package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/samplers"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

// weightProfiles are the (w1, w2) settings of Figure 2.
var weightProfiles = [][2]float64{
	{0.1, 0.9}, {0.25, 0.75}, {0.5, 0.5}, {0.75, 0.25}, {0.9, 0.1},
}

// runWeightedCase evaluates one weighted MASG configuration, returning
// the average error of each aggregate.
func runWeightedCase(tbl *table.Table, specs []core.QuerySpec, q *sqlparse.Query,
	m, reps int, seed int64) (err1, err2 float64, err error) {
	exact, err := exec.Run(tbl, q)
	if err != nil {
		return 0, 0, err
	}
	s := &samplers.CVOPT{}
	for rep := 0; rep < reps; rep++ {
		rng := rand.New(rand.NewSource(seed + int64(rep)*104729))
		rs, err := s.Build(tbl, specs, m, rng)
		if err != nil {
			return 0, 0, err
		}
		approx, err := exec.RunWeighted(tbl, q, rs.Rows, rs.Weights)
		if err != nil {
			return 0, 0, err
		}
		perAgg := metrics.GroupErrorsPerAgg(exact, approx)
		if len(perAgg) != 2 {
			return 0, 0, fmt.Errorf("weighted case expects 2 aggregates, got %d", len(perAgg))
		}
		err1 += metrics.Summarize(perAgg[0]).Mean
		err2 += metrics.Summarize(perAgg[1]).Mean
	}
	k := float64(reps)
	return err1 / k, err2 / k, nil
}

// RunFig2 reproduces Figure 2: as the weight shifts from aggregate 2 to
// aggregate 1, agg1's error falls and agg2's rises. AQ2' uses
// AVG(value)/AVG(latitude) (see EXPERIMENTS.md note on COUNT being exact
// under stratified samples); B1 uses the paper's own AVG(age)/
// AVG(trip_duration).
func RunFig2(cfg Config) error {
	cfg.setDefaults()
	openaq, bikes, err := datasets(cfg)
	if err != nil {
		return err
	}
	header(cfg.Out, "Figure 2: weighted aggregates under CVOPT (error of agg1 falls, agg2 rises as w1/w2 grows)")

	aq2q := mustParse("SELECT country, parameter, unit, AVG(value) AS agg1, AVG(hour) AS agg2 FROM OpenAQ GROUP BY country, parameter, unit")
	b1q := queryB1

	// weight effects are subtle; use extra repetitions (the experiment is
	// cheap relative to the accuracy sweeps)
	reps := cfg.Reps * 3
	tw := newTab(cfg.Out)
	fmt.Fprintln(tw, "w1/w2\tAQ2' agg1\tAQ2' agg2\tB1 agg1\tB1 agg2")
	for _, wp := range weightProfiles {
		a1, a2, err := runWeightedCase(openaq, specAQ2Weighted(wp[0], wp[1]), aq2q,
			budget(openaq, 0.01), reps, cfg.Seed+500)
		if err != nil {
			return fmt.Errorf("fig2 AQ2': %w", err)
		}
		b1, b2, err := runWeightedCase(bikes, specB1Weighted(wp[0], wp[1]), b1q,
			budget(bikes, 0.05), reps, cfg.Seed+550)
		if err != nil {
			return fmt.Errorf("fig2 B1: %w", err)
		}
		fmt.Fprintf(tw, "%.2f/%.2f\t%s\t%s\t%s\t%s\n", wp[0], wp[1], pct(a1), pct(a2), pct(b1), pct(b2))
	}
	return tw.Flush()
}
