// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 6) on the synthetic OpenAQ and Bikes datasets. Each
// experiment prints the same rows/series the paper reports; EXPERIMENTS.md
// records paper-vs-measured values. cmd/cvbench drives the registry and
// bench_test.go wraps each driver in a testing.B benchmark.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/samplers"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

// Config scales and seeds an experiment run.
type Config struct {
	OpenAQRows int   // synthetic OpenAQ size (default 400_000)
	BikesRows  int   // synthetic Bikes size (default 150_000)
	Scale      int   // duplication factor for the Table 6 "-25x" dataset (default 5)
	Seed       int64 // base RNG seed
	Reps       int   // repetitions averaged per cell (default 3; the paper uses 5)
	Out        io.Writer
}

func (c *Config) setDefaults() {
	if c.OpenAQRows == 0 {
		c.OpenAQRows = 400000
	}
	if c.BikesRows == 0 {
		c.BikesRows = 300000
	}
	if c.Scale == 0 {
		c.Scale = 5
	}
	if c.Reps == 0 {
		c.Reps = 3
	}
	if c.Out == nil {
		c.Out = io.Discard
	}
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string // e.g. "fig1", "table4"
	Title string
	Run   func(cfg Config) error
}

// Registry lists all experiments in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"fig1", "Figure 1: max error, MASG query AQ1 and SASG query AQ3, 1% sample", RunFig1},
		{"sec61", "Section 6.1 text: max errors for AQ2, B1, B2, AQ4", RunSec61},
		{"table4", "Table 4: average error %, query classes x datasets", RunTable4},
		{"fig2", "Figure 2: weighted aggregates (AQ2' 1%, B1 5%)", RunFig2},
		{"fig3", "Figure 3: max error vs sample rate (AQ2, B2)", RunFig3},
		{"fig4", "Figure 4: max error vs predicate selectivity (AQ3.*, B2.*)", RunFig4},
		{"table5", "Table 5: one AQ3-optimized sample answering six queries", RunTable5},
		{"fig5", "Figure 5: max error of CUBE queries (AQ7, B3, AQ8, B4)", RunFig5},
		{"table6", "Table 6: CPU time for precompute and query (OpenAQ, OpenAQ-Nx)", RunTable6},
		{"fig6", "Figure 6: error percentiles, CVOPT vs CVOPT-INF (AQ3, B2)", RunFig6},
		{"ablp", "Ablation: lp-norm allocation, p in {1,2,4,inf} (AQ3)", RunAblationLp},
		{"ablcap", "Ablation: cap+redistribute repair vs none vs RL clipping", RunAblationCap},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// datasets builds both synthetic tables for a config.
func datasets(cfg Config) (openaq, bikes *table.Table, err error) {
	openaq, err = datagen.OpenAQ(datagen.OpenAQConfig{Rows: cfg.OpenAQRows, Seed: cfg.Seed + 1})
	if err != nil {
		return nil, nil, err
	}
	bikes, err = datagen.Bikes(datagen.BikesConfig{Rows: cfg.BikesRows, Seed: cfg.Seed + 2})
	if err != nil {
		return nil, nil, err
	}
	return openaq, bikes, nil
}

// mustParse parses SQL that is fixed at compile time.
func mustParse(sql string) *sqlparse.Query {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		panic(fmt.Sprintf("experiments: bad built-in query %q: %v", sql, err))
	}
	return q
}

// evalCase runs one (sampler, query) cell: builds the sample reps times
// and averages the error summary against the exact answer.
func evalCase(tbl *table.Table, specs []core.QuerySpec, q *sqlparse.Query,
	s samplers.Sampler, m int, reps int, seed int64) (metrics.Summary, error) {
	exact, err := exec.Run(tbl, q)
	if err != nil {
		return metrics.Summary{}, err
	}
	var sums []metrics.Summary
	for rep := 0; rep < reps; rep++ {
		rng := rand.New(rand.NewSource(seed + int64(rep)*7919))
		rs, err := s.Build(tbl, specs, m, rng)
		if err != nil {
			return metrics.Summary{}, fmt.Errorf("%s: %w", s.Name(), err)
		}
		approx, err := exec.RunWeighted(tbl, q, rs.Rows, rs.Weights)
		if err != nil {
			return metrics.Summary{}, err
		}
		sums = append(sums, metrics.Summarize(metrics.GroupErrors(exact, approx)))
	}
	return metrics.Average(sums), nil
}

// evalPrebuilt evaluates a query against an already-built sample.
func evalPrebuilt(tbl *table.Table, q *sqlparse.Query, rs *samplers.RowSample) (metrics.Summary, error) {
	exact, err := exec.Run(tbl, q)
	if err != nil {
		return metrics.Summary{}, err
	}
	approx, err := exec.RunWeighted(tbl, q, rs.Rows, rs.Weights)
	if err != nil {
		return metrics.Summary{}, err
	}
	return metrics.Summarize(metrics.GroupErrors(exact, approx)), nil
}

// pct renders a fraction as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.2f%%", x*100) }

// newTab builds a tabwriter for aligned experiment tables.
func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// header prints a section banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// budget converts a sample rate into a row budget.
func budget(tbl *table.Table, rate float64) int {
	m := int(float64(tbl.NumRows()) * rate)
	if m < 1 {
		m = 1
	}
	return m
}

// quantileOf computes the q-quantile of a numeric column, used to build
// predicates of controlled selectivity for the Figure 4 experiment.
func quantileOf(tbl *table.Table, col string, q float64) float64 {
	c := tbl.Column(col)
	vals := make([]float64, tbl.NumRows())
	for r := range vals {
		vals[r] = c.Numeric(r)
	}
	sort.Float64s(vals)
	return metrics.Percentile(vals, q)
}

// fourMethods is the comparison set of the accuracy figures (the paper
// drops Sample+Seek after Section 6.1 because its errors are off-scale).
func fourMethods() []samplers.Sampler {
	return []samplers.Sampler{samplers.Uniform{}, samplers.Congress{}, samplers.RL{}, &samplers.CVOPT{}}
}

// methodNames renders sampler names as a header row.
func methodNames(ms []samplers.Sampler) string {
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name()
	}
	return strings.Join(names, "\t")
}
