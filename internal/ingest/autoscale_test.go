package ingest_test

// Autoscaled streams: Config.TargetCV re-runs the budget search on
// every refresh, so the published guarantee tracks the ingested data
// instead of decaying as rows arrive.

import (
	"strings"
	"testing"

	"repro/internal/ingest"
)

func TestConfigSizingValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  ingest.Config
		want string
	}{
		{"budget and target", ingest.Config{Budget: 100, TargetCV: 0.1}, "exactly one"},
		{"rate and target", ingest.Config{Rate: 0.1, TargetCV: 0.1}, "exactly one"},
		{"all three", ingest.Config{Budget: 100, Rate: 0.1, TargetCV: 0.1}, "exactly one"},
		{"none", ingest.Config{}, "required"},
		{"negative target", ingest.Config{TargetCV: -0.1}, "target CV"},
		{"max budget alone", ingest.Config{Budget: 100, MaxBudget: 500}, "requires target_cv"},
		{"negative max budget", ingest.Config{TargetCV: 0.1, MaxBudget: -1}, "max budget"},
	}
	for _, tc := range cases {
		tc.cfg.Queries = salesQueries()
		_, err := ingest.New(seedTable(t, 100), tc.cfg, nil)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestAutoscaledStreamRefreshesGuarantee(t *testing.T) {
	var pubs collectPubs
	s, err := ingest.New(seedTable(t, 2000), ingest.Config{
		Queries:  salesQueries(),
		TargetCV: 0.05,
		Seed:     7,
	}, pubs.publish)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	got := pubs.snapshot()
	if len(got) != 1 {
		t.Fatalf("got %d publications, want 1", len(got))
	}
	first := got[0]
	if first.TargetCV != 0.05 || !first.TargetMet {
		t.Fatalf("seed publication guarantee: %+v", first)
	}
	if first.AchievedCV <= 0 || first.AchievedCV > 0.05 {
		t.Fatalf("achieved CV %v outside (0, target]", first.AchievedCV)
	}
	if first.Budget <= 0 || first.Budget >= 2000 {
		t.Fatalf("autoscaled budget %d should be a real sub-population budget", first.Budget)
	}

	// More data, same target: the search re-runs over the grown
	// population and the new generation carries its own fresh guarantee.
	if _, err := s.Append(rowBatch(2000, 3000)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	got = pubs.snapshot()
	second := got[len(got)-1]
	if second.Generation != 2 || second.Rows != 5000 {
		t.Fatalf("second publication: gen=%d rows=%d", second.Generation, second.Rows)
	}
	if second.TargetCV != 0.05 || !second.TargetMet || second.AchievedCV > 0.05 {
		t.Fatalf("refreshed guarantee: %+v", second)
	}
}

func TestAutoscaledStreamCapBestEffort(t *testing.T) {
	var pubs collectPubs
	s, err := ingest.New(seedTable(t, 2000), ingest.Config{
		Queries:   salesQueries(),
		TargetCV:  0.0001, // unreachable under the cap
		MaxBudget: 10,
		Seed:      7,
	}, pubs.publish)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p := pubs.snapshot()[0]
	if p.TargetMet {
		t.Fatalf("10 rows cannot hit CV 0.0001, yet TargetMet: %+v", p)
	}
	if p.Budget != 10 || p.AchievedCV <= 0.0001 {
		t.Fatalf("cap-bound publication: budget=%d achieved=%v", p.Budget, p.AchievedCV)
	}
}
