// Package ingest is the streaming side of the serving layer: it turns a
// static registered table into a *live* one. A Stream owns a private,
// growing copy of the table plus a resident core.StreamSampler (Welford
// statistics and per-stratum reservoirs, the paper's future-work item
// (3)), so appended rows update the CVOPT state in one pass with no
// rescan. On a refresh trigger — a row-count threshold, a periodic tick,
// or an explicit flush — the stream finalizes a fresh stratified sample,
// takes an O(columns) immutable snapshot of the table, and hands both to
// a publish callback as one Publication carrying a monotonically
// increasing generation number. The serving registry installs the pair
// atomically, so concurrent queries either see the previous complete
// generation or the new complete generation, never a partial one.
//
// Concurrency model: one mutex serializes Append, Refresh and the
// snapshot cut; the publish callback runs under that mutex so
// generations reach the registry in order. Readers of a published
// snapshot need no lock at all — the snapshot shares only memory the
// writer will never touch again (see table.Snapshot).
package ingest

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/samplers"
	"repro/internal/table"
	"repro/internal/wal"
)

// DefaultCapacity is the per-stratum reservoir capacity used when
// Config.Capacity is zero. It bounds resident memory at
// O(strata × capacity) row ids and caps how many rows any one stratum
// can contribute to a published sample.
const DefaultCapacity = 256

// Policy says when a stream republishes its sample without being asked.
// The zero value never auto-refreshes (explicit Refresh only). Each
// field follows the core.Options.MinPerStratum convention: 0 means
// "unset" (a registry substitutes its default there), negative means
// "explicitly off" even when defaults exist.
type Policy struct {
	// MaxPending triggers a refresh once at least this many rows have
	// been appended since the last publication. <= 0 disables the
	// threshold.
	MaxPending int
	// Interval triggers a periodic refresh (skipped while no rows are
	// pending). <= 0 disables the ticker.
	Interval time.Duration
}

// Config describes one streaming table registration.
type Config struct {
	// Queries is the workload the live sample must serve; it fixes the
	// stratification for the stream's lifetime.
	Queries []core.QuerySpec
	// Budget is the absolute row budget of every published sample.
	// Exactly one of Budget and Rate must be set.
	Budget int
	// Rate is the fractional alternative: each refresh spends
	// Rate × (current rows), so the sample grows with the stream.
	Rate float64
	// TargetCV is the autoscaled alternative: each refresh re-runs the
	// budget search over the rows ingested so far and spends the
	// smallest budget whose predicted worst per-group CV meets the
	// target — the guarantee tracks the data instead of decaying with
	// it. Exactly one of Budget, Rate and TargetCV must be set.
	TargetCV float64
	// MaxBudget caps the autoscale search per refresh (0 = the current
	// row count). When the cap binds, the publication reports
	// TargetMet false with the CV it did achieve. Requires TargetCV.
	MaxBudget int
	// Capacity is the per-stratum reservoir capacity (0 =
	// DefaultCapacity). Allocations beyond it are clipped with the
	// surplus redistributed, exactly as in core.StreamSampler.
	Capacity int
	// Opts selects the norm (StreamSampler supports L2 and Lp).
	Opts core.Options
	// Seed seeds the reservoir RNG; 0 derives one from the table name.
	Seed int64
	// Policy selects the automatic refresh triggers.
	Policy Policy
	// Paused creates the stream without starting its automatic refresh
	// loop; call Resume once it should run. Recovery uses this so WAL
	// replay — which re-drives Append and Refresh in logged order —
	// cannot race a policy-triggered refresh that would consume sampler
	// RNG draws at unlogged points.
	Paused bool
	// FirstGeneration, when > 0, numbers the stream's first publication
	// FirstGeneration instead of 1, so generations stay monotone across
	// a recovery that resumes from a checkpoint.
	FirstGeneration uint64
}

// validate rejects configurations the sampler would choke on later.
func (c Config) validate() error {
	if len(c.Queries) == 0 {
		return errors.New("ingest: streaming config needs at least one query")
	}
	sizings := 0
	for _, set := range []bool{c.Budget > 0, c.Rate != 0, c.TargetCV != 0} {
		if set {
			sizings++
		}
	}
	switch {
	case c.Budget < 0:
		return fmt.Errorf("ingest: negative budget %d", c.Budget)
	case sizings > 1:
		return errors.New("ingest: set exactly one of budget, rate and target_cv")
	case sizings == 0:
		return errors.New("ingest: one of budget, rate or target_cv is required")
	case c.Rate < 0 || c.Rate > 1:
		return fmt.Errorf("ingest: rate must be in (0, 1], got %g", c.Rate)
	case c.TargetCV < 0 || math.IsInf(c.TargetCV, 1) || math.IsNaN(c.TargetCV):
		return fmt.Errorf("ingest: target CV must be positive and finite, got %g", c.TargetCV)
	case c.MaxBudget < 0:
		return fmt.Errorf("ingest: negative max budget %d", c.MaxBudget)
	case c.MaxBudget > 0 && c.TargetCV == 0:
		return errors.New("ingest: max budget requires target_cv")
	case c.Capacity < 0:
		return fmt.Errorf("ingest: negative reservoir capacity %d", c.Capacity)
	}
	return nil
}

// Publication is one complete publishable state of a streaming table:
// an immutable snapshot of all rows ingested so far plus the weighted
// sample drawn over exactly those rows. Sample is nil only for the
// initial publication of a stream seeded with zero rows.
type Publication struct {
	// Generation numbers publications 1, 2, 3, ... per stream.
	Generation uint64
	// Snapshot is the immutable table cut the sample's row ids index.
	Snapshot *table.Table
	// Sample is the weighted row sample over Snapshot.
	Sample *samplers.RowSample
	// Budget is the row budget this generation actually spent (resolved
	// from Config.Rate when set).
	Budget int
	// Rows is Snapshot's row count, recorded for ops surfaces.
	Rows int
	// TargetCV, AchievedCV and TargetMet report the autoscale guarantee
	// when Config.TargetCV sized this generation: the predicted worst
	// per-group CV at Budget and whether it met the target (false means
	// MaxBudget bound the search). All zero for budget/rate streams.
	TargetCV   float64
	AchievedCV float64
	TargetMet  bool
	// BuiltAt and BuildDuration time the finalize + snapshot cut.
	BuiltAt       time.Time
	BuildDuration time.Duration
	// WalSeq is the WAL sequence number of this publication's refresh
	// record; every logged append this snapshot covers has a smaller
	// sequence, so a checkpoint at this generation may truncate the WAL
	// through WalSeq. Zero when the stream has no WAL attached.
	WalSeq uint64
}

// Stream is one live table: a growing private buffer, the resident
// one-pass sampler, and the refresh machinery. Create with New; all
// methods are safe for concurrent use.
type Stream struct {
	name string
	cfg  Config

	mu      sync.Mutex
	tbl     *table.Table // private buffer; only this stream appends
	sampler *core.StreamSampler
	attrIdx []int // buffer column positions of sampler.Attrs()
	aggIdx  []int // buffer column positions of sampler.AggColumns()
	pending int   // rows appended since the last publication
	gen     uint64
	last    *Publication
	publish func(*Publication)
	wal     *wal.Log // nil until SetWAL; appends/refreshes are logged when set

	kick        chan struct{} // threshold crossings wake the loop
	stop        chan struct{}
	loopDone    chan struct{}
	loopStarted atomic.Bool
	closeOnce   sync.Once
	refreshErrs atomic.Int64
	walErrs     atomic.Int64
}

// New registers a streaming table: seed's rows are copied into the
// stream's private buffer (seed itself is never mutated and may keep
// serving readers), fed through the resident sampler, and published as
// generation 1 via the publish callback — with a finalized sample when
// the seed has rows, snapshot-only when it is empty. The callback runs
// synchronously under the stream's mutex, here and on every later
// refresh, so it observes strictly increasing generations.
func New(seed *table.Table, cfg Config, publish func(*Publication)) (*Stream, error) {
	if seed == nil || seed.Name == "" {
		return nil, errors.New("ingest: seed table must be non-nil and named")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Capacity == 0 {
		cfg.Capacity = DefaultCapacity
	}
	for i, q := range cfg.Queries {
		if err := q.Validate(); err != nil {
			return nil, fmt.Errorf("ingest: query %d: %v", i, err)
		}
	}
	seedVal := cfg.Seed
	if seedVal == 0 {
		h := fnv.New64a()
		h.Write([]byte(seed.Name))
		seedVal = int64(h.Sum64() >> 1)
	}
	sampler, err := core.NewStreamSampler(cfg.Queries, cfg.Capacity, rand.New(rand.NewSource(seedVal)))
	if err != nil {
		return nil, err
	}
	s := &Stream{
		name:     seed.Name,
		cfg:      cfg,
		tbl:      table.New(seed.Name, seed.Schema()),
		sampler:  sampler,
		publish:  publish,
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	// resolve the sampler's attribute and aggregate columns against the
	// schema once; Append re-reads values through these positions
	for _, a := range sampler.Attrs() {
		i := s.tbl.ColumnIndex(a)
		if i < 0 {
			return nil, fmt.Errorf("ingest: table %q has no column %q named by the workload", seed.Name, a)
		}
		s.attrIdx = append(s.attrIdx, i)
	}
	for _, a := range sampler.AggColumns() {
		i := s.tbl.ColumnIndex(a)
		if i < 0 {
			return nil, fmt.Errorf("ingest: table %q has no column %q named by the workload", seed.Name, a)
		}
		s.aggIdx = append(s.aggIdx, i)
	}
	if err := s.tbl.AppendTable(seed); err != nil {
		return nil, err
	}
	if err := core.StreamTable(s.sampler, s.tbl); err != nil {
		return nil, err
	}
	if cfg.FirstGeneration > 0 {
		s.gen = cfg.FirstGeneration - 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tbl.NumRows() > 0 {
		if _, err := s.refreshLocked(); err != nil {
			return nil, err
		}
	} else {
		// an empty stream still publishes its (empty) snapshot so the
		// table is immediately registered and exactly queryable
		s.publishLocked(&Publication{Snapshot: s.tbl.Snapshot(), BuiltAt: time.Now()})
	}
	if !cfg.Paused {
		s.Resume()
	}
	return s, nil
}

// Resume starts the automatic refresh loop of a stream created with
// Config.Paused. Calling it more than once (or on an unpaused stream)
// is a no-op.
func (s *Stream) Resume() {
	if s.loopStarted.CompareAndSwap(false, true) {
		go s.loop()
	}
}

// SetWAL attaches a write-ahead log: from now on every append batch and
// every publication is logged before it is applied. Recovery attaches
// the log only after replay, so replayed operations are not re-logged.
func (s *Stream) SetWAL(l *wal.Log) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wal = l
}

// WalErrors counts WAL refresh-record writes that failed (the
// publication still served; the failure surfaces here and in metrics).
func (s *Stream) WalErrors() int64 { return s.walErrs.Load() }

// Name returns the stream's table name.
func (s *Stream) Name() string { return s.name }

// Generation returns the latest published generation.
func (s *Stream) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// Pending returns how many appended rows the published sample does not
// cover yet.
func (s *Stream) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pending
}

// Rows returns the total number of rows ingested so far.
func (s *Stream) Rows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tbl.NumRows()
}

// RefreshErrors counts automatic refreshes that failed (the stream
// keeps serving its previous generation when one does).
func (s *Stream) RefreshErrors() int64 { return s.refreshErrs.Load() }

// Last returns the most recent publication.
func (s *Stream) Last() *Publication {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// LastRefreshDuration returns the build duration of the most recent
// publication (0 until one completes).
func (s *Stream) LastRefreshDuration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.last == nil {
		return 0
	}
	return s.last.BuildDuration
}

// CoerceRow converts one row of loosely-typed values (JSON decoding
// yields float64 for every number) into the Go types Table.AppendRow
// expects for sch, rejecting wrong arity, wrong types and non-integral
// values for integer columns.
func CoerceRow(sch table.Schema, vals []any) ([]any, error) {
	if len(vals) != len(sch) {
		return nil, fmt.Errorf("ingest: row arity %d, want %d", len(vals), len(sch))
	}
	out := make([]any, len(vals))
	for i, v := range vals {
		spec := sch[i]
		switch spec.Kind {
		case table.String:
			sv, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("ingest: column %q expects a string, got %T", spec.Name, v)
			}
			out[i] = sv
		case table.Float:
			switch x := v.(type) {
			case float64:
				out[i] = x
			case int:
				out[i] = float64(x)
			case int64:
				out[i] = float64(x)
			default:
				return nil, fmt.Errorf("ingest: column %q expects a number, got %T", spec.Name, v)
			}
		case table.Int:
			switch x := v.(type) {
			case int:
				out[i] = int64(x)
			case int64:
				out[i] = x
			case float64:
				if x != math.Trunc(x) || math.IsInf(x, 0) || math.IsNaN(x) {
					return nil, fmt.Errorf("ingest: column %q expects an integer, got %v", spec.Name, x)
				}
				out[i] = int64(x)
			default:
				return nil, fmt.Errorf("ingest: column %q expects an integer, got %T", spec.Name, v)
			}
		}
	}
	return out, nil
}

// AppendStatus reports the stream state right after a batch append.
type AppendStatus struct {
	// Appended is how many rows the batch added.
	Appended int
	// Pending is how many appended rows the published sample does not
	// cover yet (includes this batch).
	Pending int
	// Rows is the total ingested row count.
	Rows int
	// Generation is the currently published generation (the batch is
	// NOT part of it until the next refresh).
	Generation uint64
}

// Append ingests a batch of rows: each row is type-coerced against the
// schema, appended to the private buffer and offered to the resident
// sampler. The whole batch is validated first so a bad row rejects the
// batch atomically instead of leaving half of it ingested. Crossing the
// Policy.MaxPending threshold wakes the refresh loop; the append itself
// never pays the refresh latency.
func (s *Stream) Append(rows [][]any) (AppendStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sch := s.tbl.Schema()
	coerced := make([][]any, len(rows))
	for i, row := range rows {
		c, err := CoerceRow(sch, row)
		if err != nil {
			return AppendStatus{Pending: s.pending, Rows: s.tbl.NumRows(), Generation: s.gen},
				fmt.Errorf("ingest: row %d: %w", i, err)
		}
		coerced[i] = c
	}
	// log before apply: a batch the WAL cannot record is rejected whole,
	// so memory never holds rows a restart would lose. The write is
	// buffered (no fsync under s.mu); the serving layer calls Commit
	// after this returns.
	if s.wal != nil && len(coerced) > 0 {
		payload, err := wal.EncodeRows(coerced)
		if err == nil {
			_, err = s.wal.Append(wal.TypeRows, payload)
		}
		if err != nil {
			return AppendStatus{Pending: s.pending, Rows: s.tbl.NumRows(), Generation: s.gen},
				fmt.Errorf("ingest: wal append: %w", err)
		}
	}
	key := make(table.GroupKey, len(s.attrIdx))
	vals := make([]float64, len(s.aggIdx))
	for _, row := range coerced {
		if err := s.tbl.AppendRow(row...); err != nil {
			// unreachable after coercion; surface it loudly if not
			return AppendStatus{Pending: s.pending, Rows: s.tbl.NumRows(), Generation: s.gen}, err
		}
		r := s.tbl.NumRows() - 1
		for i, ci := range s.attrIdx {
			key[i] = s.tbl.Columns[ci].StringAt(r)
		}
		for i, ci := range s.aggIdx {
			vals[i] = s.tbl.Columns[ci].Numeric(r)
		}
		if err := s.sampler.Observe(key, vals, int32(r)); err != nil {
			return AppendStatus{Pending: s.pending, Rows: s.tbl.NumRows(), Generation: s.gen}, err
		}
		s.pending++
	}
	st := AppendStatus{
		Appended:   len(rows),
		Pending:    s.pending,
		Rows:       s.tbl.NumRows(),
		Generation: s.gen,
	}
	if s.cfg.Policy.MaxPending > 0 && s.pending >= s.cfg.Policy.MaxPending {
		select {
		case s.kick <- struct{}{}:
		default: // a wakeup is already queued
		}
	}
	return st, nil
}

// Refresh finalizes and publishes a new generation now, regardless of
// policy. With nothing pending it returns the current publication
// without rebuilding (so callers can use it as "make sure the sample is
// current" idempotently); an empty stream returns an error.
func (s *Stream) Refresh() (*Publication, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending == 0 && s.last != nil && s.last.Sample != nil {
		return s.last, nil
	}
	return s.refreshLocked()
}

// refreshLocked builds and publishes the next generation. Caller holds
// s.mu.
func (s *Stream) refreshLocked() (*Publication, error) {
	rows := s.tbl.NumRows()
	if rows == 0 {
		return nil, errors.New("ingest: no rows ingested yet")
	}
	start := time.Now()
	m := s.cfg.Budget
	var auto *core.AutoscaleResult
	if s.cfg.Rate > 0 {
		m = int(float64(rows) * s.cfg.Rate)
		if m < 1 {
			m = 1
		}
	} else if s.cfg.TargetCV > 0 {
		// re-run the budget search over the rows ingested so far. The
		// search is pure evaluation (statistics pass + probes, no RNG),
		// so WAL replay re-derives the same budget at the same point and
		// the sampler's reservoir state stays deterministic.
		plan, err := core.NewPlan(s.tbl, s.cfg.Queries)
		if err != nil {
			return nil, fmt.Errorf("ingest: autoscale refresh: %w", err)
		}
		res, err := plan.Autoscale(core.AutoscaleParams{
			TargetCV:  s.cfg.TargetCV,
			MaxBudget: s.cfg.MaxBudget,
			Opts:      s.cfg.Opts,
		})
		if err != nil {
			return nil, fmt.Errorf("ingest: autoscale refresh: %w", err)
		}
		m, auto = res.Budget, res
	}
	ss, err := s.sampler.Finalize(m, s.cfg.Opts)
	if err != nil {
		return nil, err
	}
	rids, weights := core.RowWeights(ss)
	pub := &Publication{
		Snapshot:      s.tbl.Snapshot(),
		Sample:        &samplers.RowSample{Rows: rids, Weights: weights},
		Budget:        m,
		Rows:          rows,
		BuiltAt:       start,
		BuildDuration: time.Since(start),
	}
	if auto != nil {
		pub.TargetCV = auto.TargetCV
		pub.AchievedCV = auto.AchievedCV
		pub.TargetMet = auto.Met
	}
	s.publishLocked(pub)
	return pub, nil
}

// publishLocked stamps the next generation and hands the publication to
// the callback. Caller holds s.mu, which is what keeps generations
// ordered at the receiver.
func (s *Stream) publishLocked(pub *Publication) {
	s.gen++
	pub.Generation = s.gen
	pub.Rows = pub.Snapshot.NumRows()
	// log the publication point: replay must re-finalize exactly here,
	// because the sampler consumes RNG draws at every finalize and a
	// shifted refresh would diverge the reservoir state
	if s.wal != nil {
		seq, err := s.wal.Append(wal.TypeRefresh, wal.EncodeRefresh(s.gen))
		if err != nil {
			s.walErrs.Add(1)
		} else {
			pub.WalSeq = seq
		}
	}
	s.pending = 0
	s.last = pub
	if s.publish != nil {
		s.publish(pub)
	}
}

// loop is the per-table ingest loop: it owns the automatic refresh
// triggers so appends and ticks never block each other for longer than
// one finalize. Failed automatic refreshes are counted and the previous
// generation keeps serving.
func (s *Stream) loop() {
	defer close(s.loopDone)
	var tick <-chan time.Time
	if s.cfg.Policy.Interval > 0 {
		t := time.NewTicker(s.cfg.Policy.Interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-s.stop:
			return
		case <-s.kick:
		case <-tick:
		}
		s.mu.Lock()
		var err error
		if s.pending > 0 {
			_, err = s.refreshLocked()
		}
		s.mu.Unlock()
		if err != nil {
			s.refreshErrs.Add(1)
		}
	}
}

// Close stops the refresh loop. The stream's published generations stay
// valid; further Append/Refresh calls still work but nothing fires
// automatically anymore. Safe to call more than once.
func (s *Stream) Close() {
	s.closeOnce.Do(func() { close(s.stop) })
	// a paused stream whose loop never started has nothing to wait for
	// (loopDone would never close)
	if s.loopStarted.Load() {
		<-s.loopDone
	}
}
