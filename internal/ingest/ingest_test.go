package ingest_test

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/samplers"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

func salesSchema() table.Schema {
	return table.Schema{
		{Name: "region", Kind: table.String},
		{Name: "amount", Kind: table.Float},
		{Name: "qty", Kind: table.Int},
	}
}

// seedTable builds a deterministic skewed table of n rows.
func seedTable(t testing.TB, n int) *table.Table {
	t.Helper()
	tbl := table.New("sales", salesSchema())
	tbl.Grow(n)
	for _, row := range rowBatch(0, n) {
		if err := tbl.AppendRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// rowBatch generates rows [start, start+n) of the same deterministic
// skewed distribution: NA dominates, EU is mid-sized, APAC is tiny and
// high-variance.
func rowBatch(start, n int) [][]any {
	rows := make([][]any, 0, n)
	for i := start; i < start+n; i++ {
		var region string
		var base float64
		switch {
		case i%20 == 0:
			region, base = "APAC", 300
		case i%20 < 5:
			region, base = "EU", 80
		default:
			region, base = "NA", 100
		}
		rows = append(rows, []any{region, base + float64(i%23) - 11, int64(1 + i%5)})
	}
	return rows
}

func salesQueries() []core.QuerySpec {
	return []core.QuerySpec{{
		GroupBy: []string{"region"},
		Aggs:    []core.AggColumn{{Column: "amount"}},
	}}
}

// collectPubs wires a publish callback into a slice (serialized by the
// stream's own mutex, per the New contract).
type collectPubs struct {
	mu   sync.Mutex
	pubs []*ingest.Publication
}

func (c *collectPubs) publish(p *ingest.Publication) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pubs = append(c.pubs, p)
}

func (c *collectPubs) snapshot() []*ingest.Publication {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*ingest.Publication(nil), c.pubs...)
}

func TestNewPublishesSeedGeneration(t *testing.T) {
	var pubs collectPubs
	s, err := ingest.New(seedTable(t, 2000), ingest.Config{
		Queries: salesQueries(),
		Budget:  200,
		Seed:    7,
	}, pubs.publish)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := pubs.snapshot()
	if len(got) != 1 {
		t.Fatalf("got %d publications, want 1", len(got))
	}
	p := got[0]
	if p.Generation != 1 || p.Rows != 2000 || p.Sample == nil || p.Sample.Len() == 0 {
		t.Fatalf("seed publication: gen=%d rows=%d sample=%v", p.Generation, p.Rows, p.Sample)
	}
	if p.Snapshot.NumRows() != 2000 {
		t.Fatalf("snapshot rows = %d", p.Snapshot.NumRows())
	}
	if s.Pending() != 0 || s.Generation() != 1 {
		t.Fatalf("pending=%d gen=%d after seed publish", s.Pending(), s.Generation())
	}
}

func TestEmptySeedPublishesSnapshotOnly(t *testing.T) {
	var pubs collectPubs
	s, err := ingest.New(table.New("sales", salesSchema()), ingest.Config{
		Queries: salesQueries(),
		Rate:    0.1,
	}, pubs.publish)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := pubs.snapshot()
	if len(got) != 1 || got[0].Sample != nil || got[0].Rows != 0 {
		t.Fatalf("empty-seed publication: %+v", got[0])
	}
	// refresh with zero rows has nothing to sample
	if _, err := s.Refresh(); err == nil {
		t.Fatal("refresh of an empty stream should fail")
	}
	// rows arrive; refresh succeeds and covers them
	if _, err := s.Append(rowBatch(0, 500)); err != nil {
		t.Fatal(err)
	}
	pub, err := s.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if pub.Generation != 2 || pub.Rows != 500 || pub.Sample == nil {
		t.Fatalf("post-append publication: gen=%d rows=%d", pub.Generation, pub.Rows)
	}
	if pub.Budget != 50 {
		t.Fatalf("rate budget = %d, want 50 (10%% of 500)", pub.Budget)
	}
}

func TestAppendValidatesBatchAtomically(t *testing.T) {
	s, err := ingest.New(seedTable(t, 100), ingest.Config{Queries: salesQueries(), Budget: 50}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	bad := [][]any{
		{"NA", 1.0, int64(1)},
		{"NA", "not-a-number", int64(1)}, // row 1 is broken
	}
	if _, err := s.Append(bad); err == nil {
		t.Fatal("batch with a bad row should fail")
	}
	if s.Rows() != 100 || s.Pending() != 0 {
		t.Fatalf("failed batch leaked rows: rows=%d pending=%d", s.Rows(), s.Pending())
	}
	// arity and integer-ness are enforced too
	for _, row := range [][]any{
		{"NA", 1.0},
		{"NA", 1.0, 1.5},
		{3, 1.0, int64(1)},
	} {
		if _, err := s.Append([][]any{row}); err == nil {
			t.Fatalf("row %v should be rejected", row)
		}
	}
	// JSON-shaped numbers coerce: float64 for both numeric kinds
	st, err := s.Append([][]any{{"NA", float64(7), float64(3)}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Appended != 1 || st.Pending != 1 || st.Rows != 101 {
		t.Fatalf("append status: %+v", st)
	}
}

func TestCoerceRow(t *testing.T) {
	sch := salesSchema()
	out, err := ingest.CoerceRow(sch, []any{"EU", 1, float64(4)})
	if err != nil {
		t.Fatal(err)
	}
	if out[1] != float64(1) || out[2] != int64(4) {
		t.Fatalf("coerced: %#v", out)
	}
	if _, err := ingest.CoerceRow(sch, []any{"EU", 1.0, math.NaN()}); err == nil {
		t.Fatal("NaN must not coerce to int")
	}
}

func TestThresholdTriggersRefresh(t *testing.T) {
	var pubs collectPubs
	s, err := ingest.New(seedTable(t, 1000), ingest.Config{
		Queries: salesQueries(),
		Budget:  100,
		Policy:  ingest.Policy{MaxPending: 200},
	}, pubs.publish)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Append(rowBatch(1000, 250)); err != nil {
		t.Fatal(err)
	}
	// the loop refreshes asynchronously; wait for generation 2
	deadline := time.Now().Add(5 * time.Second)
	for s.Generation() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("threshold refresh never fired")
		}
		time.Sleep(time.Millisecond)
	}
	got := pubs.snapshot()
	last := got[len(got)-1]
	if last.Rows != 1250 {
		t.Fatalf("threshold publication covers %d rows, want 1250", last.Rows)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after auto refresh", s.Pending())
	}
}

func TestTickerTriggersRefresh(t *testing.T) {
	var pubs collectPubs
	s, err := ingest.New(seedTable(t, 1000), ingest.Config{
		Queries: salesQueries(),
		Budget:  100,
		Policy:  ingest.Policy{Interval: 5 * time.Millisecond},
	}, pubs.publish)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Append(rowBatch(1000, 10)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Generation() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("periodic refresh never fired")
		}
		time.Sleep(time.Millisecond)
	}
	gen := s.Generation()
	// with nothing pending the ticker must NOT mint empty generations
	time.Sleep(30 * time.Millisecond)
	if got := s.Generation(); got != gen {
		t.Fatalf("ticker minted generations without pending rows: %d -> %d", gen, got)
	}
}

func TestRefreshIdempotentWhenNothingPending(t *testing.T) {
	s, err := ingest.New(seedTable(t, 500), ingest.Config{Queries: salesQueries(), Budget: 50, Seed: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	p1, err := s.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 || p1.Generation != 1 {
		t.Fatalf("no-op refresh rebuilt: gen %d -> %d", p1.Generation, p2.Generation)
	}
}

func TestConfigValidation(t *testing.T) {
	seed := seedTable(t, 10)
	cases := []ingest.Config{
		{},                                    // no queries, no budget
		{Queries: salesQueries()},             // no budget
		{Queries: salesQueries(), Budget: -1}, // negative budget
		{Queries: salesQueries(), Rate: 1.5},  // bad rate
		{Queries: salesQueries(), Budget: 5, Rate: 0.1},                                                                 // both
		{Queries: salesQueries(), Budget: 5, Capacity: -1},                                                              // bad capacity
		{Queries: []core.QuerySpec{{GroupBy: []string{"nope"}, Aggs: []core.AggColumn{{Column: "amount"}}}}, Budget: 5}, // unknown attr
		{Queries: []core.QuerySpec{{GroupBy: []string{"region"}, Aggs: []core.AggColumn{{Column: "nope"}}}}, Budget: 5}, // unknown agg
		{Queries: []core.QuerySpec{{GroupBy: []string{"region"}}}, Budget: 5},                                           // invalid spec
	}
	for i, cfg := range cases {
		if _, err := ingest.New(seed, cfg, nil); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
	if _, err := ingest.New(nil, ingest.Config{Queries: salesQueries(), Budget: 5}, nil); err == nil {
		t.Error("nil seed should be rejected")
	}
}

// The acceptance bar for in-place refresh: after streaming extra rows
// and refreshing, the published sample's per-group accuracy matches a
// fresh two-pass CVOPT build over exactly the same rows, within
// reservoir-subsampling tolerance.
func TestRefreshedSampleMatchesTwoPassBuild(t *testing.T) {
	const budget = 400
	var pubs collectPubs
	s, err := ingest.New(seedTable(t, 4000), ingest.Config{
		Queries: salesQueries(),
		Budget:  budget,
		// capacity comfortably above any per-stratum allocation: the
		// one-pass sample is then distributed like the two-pass one
		Capacity: 2 * budget,
		Seed:     11,
	}, pubs.publish)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Append(rowBatch(4000, 3000)); err != nil {
		t.Fatal(err)
	}
	pub, err := s.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if pub.Rows != 7000 || pub.Snapshot.NumRows() != 7000 {
		t.Fatalf("publication covers %d rows, want 7000", pub.Rows)
	}

	// two-pass ground build over the same 7000 rows
	cv := &samplers.CVOPT{}
	twoPass, err := cv.Build(pub.Snapshot, salesQueries(), budget, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}

	q, err := sqlparse.Parse("SELECT region, AVG(amount) FROM sales GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	exact, err := exec.Run(pub.Snapshot, q)
	if err != nil {
		t.Fatal(err)
	}
	errOf := func(rows []int32, weights []float64) float64 {
		approx, err := exec.RunWeighted(pub.Snapshot, q, rows, weights)
		if err != nil {
			t.Fatal(err)
		}
		return metrics.Summarize(metrics.GroupErrors(exact, approx)).Mean
	}
	streamErr := errOf(pub.Sample.Rows, pub.Sample.Weights)
	twoPassErr := errOf(twoPass.Rows, twoPass.Weights)
	// both are ~1/sqrt(s_c) estimators off the same allocation; the
	// stream may only pay a subsampling penalty, never an order of
	// magnitude
	if streamErr > 0.05 {
		t.Fatalf("streamed sample mean error %.4f implausibly high", streamErr)
	}
	if twoPassErr > 0 && streamErr > 5*twoPassErr+0.01 {
		t.Fatalf("streamed sample error %.4f far above two-pass %.4f", streamErr, twoPassErr)
	}
	// and the sample sizes agree: identical statistics, identical
	// allocation, capacity high enough that nothing was clipped
	if got, want := pub.Sample.Len(), twoPass.Len(); got < want-len(exact.Rows) || got > want+len(exact.Rows) {
		t.Fatalf("streamed sample has %d rows, two-pass %d — allocations diverged", got, want)
	}
}

// Concurrent appends and refreshes against published snapshots: the
// race detector asserts the snapshot/append isolation, the checks
// assert generation monotonicity and complete publications.
func TestConcurrentAppendRefreshRace(t *testing.T) {
	var pubs collectPubs
	s, err := ingest.New(seedTable(t, 1000), ingest.Config{
		Queries: salesQueries(),
		Rate:    0.05,
		Policy:  ingest.Policy{MaxPending: 150},
		Seed:    5,
	}, pubs.publish)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	q, err := sqlparse.Parse("SELECT region, AVG(amount), COUNT(*) FROM sales GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(w int) { // appender
			defer wg.Done()
			for b := 0; b < 20; b++ {
				if _, err := s.Append(rowBatch(1000+1000*w+20*b, 20)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
		go func() { // reader of whatever generation is current
			defer wg.Done()
			var lastGen uint64
			for i := 0; i < 30; i++ {
				pub := s.Last()
				if pub.Generation < lastGen {
					t.Errorf("generation went backwards: %d -> %d", lastGen, pub.Generation)
					return
				}
				lastGen = pub.Generation
				if pub.Sample == nil {
					t.Error("published generation lost its sample")
					return
				}
				res, err := exec.RunWeighted(pub.Snapshot, q, pub.Sample.Rows, pub.Sample.Weights)
				if err != nil {
					t.Error(err)
					return
				}
				for _, row := range res.Rows {
					if len(row.Aggs) != 2 || math.IsNaN(row.Aggs[0]) {
						t.Errorf("torn read: group %v aggs %v", row.Key, row.Aggs)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if _, err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := s.Rows(); got != 1000+4*20*20 {
		t.Fatalf("ingested %d rows, want %d", got, 1000+4*20*20)
	}
	if s.RefreshErrors() != 0 {
		t.Fatalf("automatic refreshes failed %d times", s.RefreshErrors())
	}
	// every publication covers a prefix: generations and row counts are
	// both strictly increasing
	got := pubs.snapshot()
	for i := 1; i < len(got); i++ {
		if got[i].Generation != got[i-1].Generation+1 {
			t.Fatalf("generation gap: %d after %d", got[i].Generation, got[i-1].Generation)
		}
		if got[i].Rows < got[i-1].Rows {
			t.Fatalf("publication %d covers fewer rows (%d) than its predecessor (%d)",
				got[i].Generation, got[i].Rows, got[i-1].Rows)
		}
	}
}

func BenchmarkStreamAppend(b *testing.B) {
	s, err := ingest.New(seedTable(b, 1000), ingest.Config{Queries: salesQueries(), Budget: 200}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	batch := rowBatch(1000, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Append(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(batch)), "rows/op")
}

func BenchmarkStreamRefresh(b *testing.B) {
	s, err := ingest.New(seedTable(b, 50000), ingest.Config{Queries: salesQueries(), Budget: 500}, nil)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	batch := rowBatch(50000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// keep one row pending so Refresh actually rebuilds
		if _, err := s.Append(batch); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Refresh(); err != nil {
			b.Fatal(err)
		}
	}
}
