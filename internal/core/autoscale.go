package core

import (
	"fmt"
	"math"
)

// Budget autoscaling: instead of guessing a row budget M, a caller
// states the accuracy it needs — "every per-group estimate with CV at
// most target" — and the autoscaler searches for the smallest budget
// whose *predicted* worst CV (Plan.PredictedCVs, Section 4.1) meets it.
// Via Chebyshev the target doubles as an a-priori error guarantee: the
// probability a relative error exceeds ε is at most (target/ε)², fixed
// before a single row is drawn.
//
// The search is pure evaluation over the already-computed plan
// statistics (no sampling, no table scans): an exponential probe brackets
// the first passing budget, bisection narrows the bracket, and a final
// step-down refinement guarantees the reported minimality — the budget
// one Step below the answer does NOT meet the target — even where
// integer rounding makes the CV curve locally non-monotone. Because the
// probe grid and the bisection decisions depend on the target only
// through "does this budget meet it", a tighter target can never choose
// a smaller budget than a looser one.

// AutoscaleParams configures one budget search.
type AutoscaleParams struct {
	// TargetCV is the goal: the worst predicted per-group CV of the
	// chosen allocation must not exceed it. Must be positive and finite.
	TargetCV float64
	// MaxBudget is the hard cap. When even MaxBudget cannot meet the
	// target, the search returns best-effort (Met=false) at the cap. 0
	// defaults to the table's row count — always sufficient, since a
	// full sample has zero sampling error.
	MaxBudget int
	// MinBudget is the smallest candidate considered (default 1).
	MinBudget int
	// Step is the search granularity: the minimality guarantee is
	// "Budget−Step misses the target" (default 1, exact minimality).
	Step int
	// Opts selects the allocation norm and repair, exactly as passed to
	// Plan.Allocate for the final sample — the search must predict the
	// allocation that will actually be drawn.
	Opts Options
}

// AutoscaleResult reports the chosen budget and the guarantee it comes
// with.
type AutoscaleResult struct {
	// Budget is the chosen row budget: the smallest candidate meeting
	// TargetCV, or MaxBudget when the cap binds.
	Budget int
	// AchievedCV is the worst predicted per-group CV at Budget. +Inf
	// means some needed stratum stays unsampled even at the cap.
	AchievedCV float64
	// TargetCV echoes the request.
	TargetCV float64
	// Met reports whether AchievedCV <= TargetCV. False means the cap
	// bound the search and Budget/AchievedCV are best-effort.
	Met bool
	// Evaluations counts the distinct budgets whose allocation was
	// predicted — the search cost (O(log MaxBudget) by construction).
	Evaluations int
}

// WorstCV returns the largest predicted CV over all (query, group,
// aggregate) estimates under the given allocation — the quantity
// autoscaling drives below the target. Estimates whose weight is zero
// are ignored: a caller that explicitly zero-weighted a group declared
// its accuracy irrelevant, so it must not hold the budget hostage.
// Weights otherwise gate inclusion only; they do not scale the CV,
// because the target is a per-group guarantee, not a norm.
func (p *Plan) WorstCV(alloc []int) float64 {
	worst := 0.0
	for _, e := range p.PredictedCVs(alloc) {
		if e.Weight <= 0 {
			continue
		}
		if e.CV > worst {
			worst = e.CV
		}
	}
	return worst
}

// Autoscale searches for the smallest budget whose predicted worst
// per-group CV meets params.TargetCV. See the package comment above for
// the search shape and its guarantees. The returned budget feeds
// Plan.Sample (or any Build path) unchanged; AchievedCV is the a-priori
// CV bound of that sample.
func (p *Plan) Autoscale(params AutoscaleParams) (*AutoscaleResult, error) {
	target := params.TargetCV
	if !(target > 0) || math.IsInf(target, 1) {
		return nil, fmt.Errorf("core: target CV must be positive and finite, got %v", target)
	}
	totalRows := p.Table.NumRows()
	if totalRows == 0 {
		return nil, fmt.Errorf("core: cannot autoscale over an empty table")
	}
	maxB := params.MaxBudget
	if maxB <= 0 || maxB > totalRows {
		// budgets beyond the population allocate identically to the full
		// table (Allocate clamps at the caps), so a larger cap only
		// wastes probes
		maxB = totalRows
	}
	minB := params.MinBudget
	if minB < 1 {
		minB = 1
	}
	if minB > maxB {
		minB = maxB
	}
	step := params.Step
	if step < 1 {
		step = 1
	}

	res := &AutoscaleResult{TargetCV: target}
	memo := make(map[int]float64)
	eval := func(m int) (float64, error) {
		if cv, ok := memo[m]; ok {
			return cv, nil
		}
		alloc, err := p.Allocate(m, params.Opts)
		if err != nil {
			return 0, fmt.Errorf("core: autoscale probing budget %d: %w", m, err)
		}
		cv := p.WorstCV(alloc)
		memo[m] = cv
		res.Evaluations++
		return cv, nil
	}

	// Exponential probe: double from MinBudget until a budget meets the
	// target or the cap is reached. The probe sequence is fixed (it does
	// not depend on the target except through pass/fail), which is what
	// makes the chosen budget monotone in the target.
	hi := minB
	cv, err := eval(hi)
	if err != nil {
		return nil, err
	}
	lo := minB - 1 // everything at or below lo is known/assumed failing
	for cv > target && hi < maxB {
		lo = hi
		hi *= 2
		if hi > maxB || hi < 0 { // < 0: overflow guard
			hi = maxB
		}
		if cv, err = eval(hi); err != nil {
			return nil, err
		}
	}
	if cv > target {
		// cap binds: best effort at the cap, with the achieved CV so the
		// caller knows exactly what guarantee it is getting instead
		res.Budget, res.AchievedCV, res.Met = maxB, cv, false
		return res, nil
	}

	// Bisection inside (lo, hi]: hi meets the target, lo does not.
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		mcv, err := eval(mid)
		if err != nil {
			return nil, err
		}
		if mcv <= target {
			hi = mid
		} else {
			lo = mid
		}
	}

	// Step-down refinement: integer rounding (largest-remainder,
	// min-per-stratum repair) can make the CV curve locally non-monotone,
	// so bisection alone cannot promise minimality. Walk down while the
	// budget one Step below still meets the target; on exit the reported
	// guarantee — Budget meets, Budget−Step does not — holds by
	// construction.
	for hi-step >= minB {
		bcv, err := eval(hi - step)
		if err != nil {
			return nil, err
		}
		if bcv > target {
			break
		}
		hi -= step
	}
	acv, err := eval(hi)
	if err != nil {
		return nil, err
	}
	res.Budget, res.AchievedCV, res.Met = hi, acv, true
	return res, nil
}
