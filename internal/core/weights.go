package core

import (
	"repro/internal/sample"
)

// RowWeights flattens a stratified sample into parallel (row id, weight)
// slices, where a row sampled from stratum c carries the Horvitz-
// Thompson weight n_c/s_c. Any aggregate evaluated over the weighted
// rows is an unbiased estimate of the full-table aggregate: weighted
// COUNT estimates group cardinality, weighted SUM the group sum, and the
// weighted mean reproduces the paper's y_a = Σ n_c·y_c / Σ n_c combined
// estimator while also supporting query-time predicates and group-by
// attribute sets that differ from the stratification.
func RowWeights(ss *sample.StratifiedSample) (rows []int32, weights []float64) {
	total := ss.TotalSampled()
	rows = make([]int32, 0, total)
	weights = make([]float64, 0, total)
	for i := range ss.Strata {
		st := &ss.Strata[i]
		w := st.ScaleUp()
		for _, r := range st.Rows {
			rows = append(rows, r)
			weights = append(weights, w)
		}
	}
	return rows, weights
}
