package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/table"
)

func TestAutoscaleMeetsTarget(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	p, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Autoscale(AutoscaleParams{TargetCV: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Met {
		t.Fatalf("default cap (table rows) must always meet the target: %+v", res)
	}
	if res.AchievedCV > 0.05 {
		t.Fatalf("achieved CV %v exceeds target", res.AchievedCV)
	}
	if res.Budget < 1 || res.Budget > tbl.NumRows() {
		t.Fatalf("budget %d out of range", res.Budget)
	}
	// the chosen budget must be usable as-is by the sampling pass
	ss, _, err := p.Sample(res.Budget, Options{}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if ss.TotalSampled() == 0 {
		t.Fatal("autoscaled sample drew no rows")
	}
	// cross-check the reported guarantee against the public predictor
	alloc, err := p.Allocate(res.Budget, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.WorstCV(alloc); math.Abs(got-res.AchievedCV) > 1e-12 {
		t.Fatalf("AchievedCV %v != WorstCV(Allocate(budget)) %v", res.AchievedCV, got)
	}
}

func TestAutoscaleValidation(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	p, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []float64{0, -0.1, math.NaN(), math.Inf(1)} {
		if _, err := p.Autoscale(AutoscaleParams{TargetCV: target}); err == nil {
			t.Fatalf("target %v should be rejected", target)
		}
	}
}

// A cap below the stratum count leaves some stratum unsampled, so the
// predicted CV stays +Inf: the autoscaler must return best-effort at the
// cap rather than claiming the target was met.
func TestAutoscaleCapBindsBestEffort(t *testing.T) {
	tbl := makeTable(t, defaultSpecs()) // 4 strata on g
	p, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Autoscale(AutoscaleParams{TargetCV: 0.05, MaxBudget: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Met {
		t.Fatalf("3 rows cannot cover 4 strata, yet Met: %+v", res)
	}
	if res.Budget != 3 {
		t.Fatalf("best effort should sit at the cap, got %d", res.Budget)
	}
	if !math.IsInf(res.AchievedCV, 1) {
		t.Fatalf("an unsampleable stratum should keep CV infinite, got %v", res.AchievedCV)
	}

	// a cap that is reachable but too tight for the target: finite
	// achieved CV above the target
	res, err = p.Autoscale(AutoscaleParams{TargetCV: 1e-6, MaxBudget: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Met || res.Budget != 100 {
		t.Fatalf("cap-bound search should report best effort at the cap: %+v", res)
	}
	if math.IsInf(res.AchievedCV, 1) || res.AchievedCV <= 1e-6 {
		t.Fatalf("achieved CV should be finite and above the target: %v", res.AchievedCV)
	}
}

// Zero-weighted estimates must not hold the budget hostage: a group the
// caller explicitly weighted out of the objective is excluded from the
// worst-CV criterion.
func TestAutoscaleIgnoresZeroWeightGroups(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	withAll, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}})
	if err != nil {
		t.Fatal(err)
	}
	// "d" is the small, high-variance group that dominates the budget
	zeroed, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"},
		Aggs: []AggColumn{{Column: "v", GroupWeights: map[string]float64{"d": 0}}}}})
	if err != nil {
		t.Fatal(err)
	}
	target := 0.02
	all, err := withAll.Autoscale(AutoscaleParams{TargetCV: target})
	if err != nil {
		t.Fatal(err)
	}
	part, err := zeroed.Autoscale(AutoscaleParams{TargetCV: target})
	if err != nil {
		t.Fatal(err)
	}
	if part.Budget > all.Budget {
		t.Fatalf("dropping a group from the goal cannot cost more budget: %d > %d", part.Budget, all.Budget)
	}
}

// randomPlanCase builds a randomized small table and workload for the
// property tests. Group means stay well away from zero so Betas never
// rejects the plan.
func randomPlanCase(t *testing.T, rng *rand.Rand) *Plan {
	t.Helper()
	tbl := table.New("t", table.Schema{
		{Name: "g", Kind: table.String},
		{Name: "h", Kind: table.String},
		{Name: "v", Kind: table.Float},
		{Name: "u", Kind: table.Float},
	})
	groups := 2 + rng.Intn(5)
	for gi := 0; gi < groups; gi++ {
		n := 5 + rng.Intn(300)
		mean := 10 + 990*rng.Float64()
		sd := mean * rng.Float64() / 2
		for i := 0; i < n; i++ {
			v := mean + sd*rng.NormFloat64()
			u := mean/2 + sd*rng.NormFloat64()/2
			h := fmt.Sprintf("h%d", i%(1+rng.Intn(3)))
			if err := tbl.AppendRow(fmt.Sprintf("g%d", gi), h, v, u); err != nil {
				t.Fatal(err)
			}
		}
	}
	queries := []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}}
	if rng.Intn(2) == 0 {
		queries = append(queries, QuerySpec{GroupBy: []string{"h"}, Aggs: []AggColumn{{Column: "u"}}})
	}
	p, err := NewPlan(tbl, queries)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The autoscaler's two contracted properties, over randomized
// tables/workloads (1000 trials):
//
//  1. minimality: the predicted worst CV at the chosen budget meets the
//     target, and at chosen−step it does not;
//  2. monotonicity: a tighter target never chooses a smaller budget.
func TestAutoscaleMinimalAndMonotoneProperty(t *testing.T) {
	trials := 1000
	if testing.Short() {
		trials = 100
	}
	rng := rand.New(rand.NewSource(42))
	norms := []Options{{}, {Norm: LInf}, {Norm: Lp, P: 3}}
	for trial := 0; trial < trials; trial++ {
		p := randomPlanCase(t, rng)
		opts := norms[rng.Intn(len(norms))]
		if opts.Norm == LInf && len(p.Queries) > 1 {
			opts = Options{} // CVOPT-INF is defined for a single group-by
		}
		step := 1 + rng.Intn(3)
		// log-uniform target in [0.003, 0.3]
		target := math.Exp(math.Log(0.003) + rng.Float64()*math.Log(100))
		params := AutoscaleParams{TargetCV: target, Step: step, Opts: opts}
		res, err := p.Autoscale(params)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		check := func(m int) float64 {
			alloc, err := p.Allocate(m, opts)
			if err != nil {
				t.Fatalf("trial %d: allocate %d: %v", trial, m, err)
			}
			return p.WorstCV(alloc)
		}
		if res.Met {
			if got := check(res.Budget); got > target {
				t.Fatalf("trial %d: chosen budget %d has worst CV %v > target %v", trial, res.Budget, got, target)
			}
			if below := res.Budget - step; below >= 1 {
				if got := check(below); got <= target {
					t.Fatalf("trial %d: budget %d (= chosen−step) already meets target %v (CV %v): chosen %d is not minimal",
						trial, below, target, got, res.Budget)
				}
			}
		} else if res.Budget != p.Table.NumRows() {
			t.Fatalf("trial %d: unmet target must sit at the cap: %+v", trial, res)
		}

		// tighter target ⇒ at least as much budget
		tight, err := p.Autoscale(AutoscaleParams{TargetCV: target / 2, Step: step, Opts: opts})
		if err != nil {
			t.Fatalf("trial %d tight: %v", trial, err)
		}
		if tight.Budget < res.Budget {
			t.Fatalf("trial %d: target %v chose %d rows but tighter %v chose fewer (%d)",
				trial, target, res.Budget, target/2, tight.Budget)
		}
	}
}

// The search must stay logarithmic in the budget range: probing,
// bisection and the step-down refinement are each O(log MaxBudget).
func TestAutoscaleEvaluationCount(t *testing.T) {
	tbl := makeTable(t, ampleSpecs())
	p, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Autoscale(AutoscaleParams{TargetCV: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	bound := 3*bits(tbl.NumRows()) + 5
	if res.Evaluations > bound {
		t.Fatalf("%d evaluations for a %d-row table (bound %d): search is not logarithmic",
			res.Evaluations, tbl.NumRows(), bound)
	}
}

func bits(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}
