package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datagen"
)

// End-to-end statistical check of the autoscaler's a-priori guarantee:
// autoscale at target_cv ∈ {0.02, 0.05, 0.1} on synthetic OpenAQ data,
// draw the sample, and verify the realized per-group relative errors are
// consistent with the Chebyshev bound the predicted CVs promise —
// P(|rel err| > k·CV) ≤ 1/k² — across 100 deterministic trials.
func TestAutoscaleRealizedErrorsWithinChebyshev(t *testing.T) {
	trials := 100
	rows := 20000
	if testing.Short() {
		trials, rows = 25, 8000
	}
	tbl, err := datagen.OpenAQ(datagen.OpenAQConfig{Rows: rows, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"country"}, Aggs: []AggColumn{{Column: "value"}}}})
	if err != nil {
		t.Fatal(err)
	}

	// exact per-country mean and population, for realized errors and the
	// n_a in the paper's combined estimator
	country := tbl.Column("country")
	value := tbl.Column("value")
	exactSum := map[string]float64{}
	exactN := map[string]float64{}
	for r := 0; r < tbl.NumRows(); r++ {
		c := country.StringAt(r)
		exactSum[c] += value.Float[r]
		exactN[c]++
	}

	for _, target := range []float64{0.02, 0.05, 0.1} {
		res, err := p.Autoscale(AutoscaleParams{TargetCV: target})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Met || res.AchievedCV > target {
			t.Fatalf("target %v: autoscale did not meet it: %+v", target, res)
		}

		// predicted per-group CV at the chosen allocation — the
		// estimator-specific bound each realized error is checked against
		alloc, err := p.Allocate(res.Budget, Options{})
		if err != nil {
			t.Fatal(err)
		}
		predCV := map[string]float64{}
		for _, e := range p.PredictedCVs(alloc) {
			predCV[e.Group] = e.CV
		}

		// trials × groups realized relative errors of the weighted
		// estimator y_a = (1/n_a) Σ w_i v_i
		type tail struct{ k, viol, obs float64 }
		tails := []tail{{k: 2}, {k: 3}}
		for trial := 0; trial < trials; trial++ {
			ss, _, err := p.Sample(res.Budget, Options{}, rand.New(rand.NewSource(int64(1000*target)+int64(trial))))
			if err != nil {
				t.Fatal(err)
			}
			rws, weights := RowWeights(ss)
			estSum := map[string]float64{}
			for i, r := range rws {
				estSum[country.StringAt(int(r))] += weights[i] * value.Float[int(r)]
			}
			for c, n := range exactN {
				mean := exactSum[c] / n
				if mean == 0 || predCV[c] == 0 || math.IsInf(predCV[c], 1) {
					continue
				}
				rel := math.Abs(estSum[c]/n-mean) / math.Abs(mean)
				for i := range tails {
					tails[i].obs++
					if rel > tails[i].k*predCV[c] {
						tails[i].viol++
					}
				}
			}
		}
		for _, tl := range tails {
			if tl.obs == 0 {
				t.Fatalf("target %v: no observations", target)
			}
			rate, bound := tl.viol/tl.obs, 1/(tl.k*tl.k)
			if rate > bound {
				t.Fatalf("target %v: P(|rel err| > %g·CV) = %v over %v observations violates Chebyshev bound %v",
					target, tl.k, rate, tl.obs, bound)
			}
		}
	}
}
