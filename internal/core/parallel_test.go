package core

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/table"
)

// The parallel statistics pass must agree with a sequential scan on
// every per-stratum moment (count exactly; mean/variance to float
// associativity tolerance).
func TestParallelStatsMatchSequential(t *testing.T) {
	tbl, err := datagen.OpenAQ(datagen.OpenAQConfig{Rows: 150000, Seed: 9}) // above parallelThreshold
	if err != nil {
		t.Fatal(err)
	}
	gi, err := table.BuildGroupIndex(tbl, []string{"country", "parameter"})
	if err != nil {
		t.Fatal(err)
	}
	cols := []*table.Column{tbl.Column("value"), tbl.Column("latitude")}
	seq, err := scanRange(gi, cols, 0, tbl.NumRows())
	if err != nil {
		t.Fatal(err)
	}
	par, err := collectStats(tbl, gi, []string{"value", "latitude"})
	if err != nil {
		t.Fatal(err)
	}
	if par.NumStrata() != seq.NumStrata() {
		t.Fatalf("strata mismatch")
	}
	for c := 0; c < seq.NumStrata(); c++ {
		for j := 0; j < 2; j++ {
			a, b := seq.Group(c).Cols[j], par.Group(c).Cols[j]
			if a.N != b.N {
				t.Fatalf("stratum %d col %d N %d vs %d", c, j, a.N, b.N)
			}
			if a.N == 0 {
				continue
			}
			if math.Abs(a.Mean-b.Mean) > 1e-9*(math.Abs(a.Mean)+1) {
				t.Fatalf("stratum %d col %d mean %v vs %v", c, j, a.Mean, b.Mean)
			}
			if math.Abs(a.Variance()-b.Variance()) > 1e-6*(a.Variance()+1) {
				t.Fatalf("stratum %d col %d var %v vs %v", c, j, a.Variance(), b.Variance())
			}
			if a.Min != b.Min || a.Max != b.Max {
				t.Fatalf("stratum %d col %d min/max mismatch", c, j)
			}
		}
	}
}

// NewPlan must be deterministic regardless of the parallel split: two
// plans over the same table produce identical allocations.
func TestParallelPlanDeterministic(t *testing.T) {
	tbl, err := datagen.OpenAQ(datagen.OpenAQConfig{Rows: 120000, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	specs := []QuerySpec{{GroupBy: []string{"country", "parameter"}, Aggs: []AggColumn{{Column: "value"}}}}
	p1, err := NewPlan(tbl, specs)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewPlan(tbl, specs)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := p1.Allocate(2000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := p2.Allocate(2000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("allocation differs at stratum %d: %d vs %d", i, a1[i], a2[i])
		}
	}
}

func BenchmarkStatsPassParallel(b *testing.B) {
	tbl, err := datagen.OpenAQ(datagen.OpenAQConfig{Rows: 400000, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	gi, err := table.BuildGroupIndex(tbl, []string{"country", "parameter", "unit"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := collectStats(tbl, gi, []string{"value"}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tbl.NumRows()*b.N)/b.Elapsed().Seconds(), "rows/s")
}

func BenchmarkStatsPassSequential(b *testing.B) {
	tbl, err := datagen.OpenAQ(datagen.OpenAQConfig{Rows: 400000, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	gi, err := table.BuildGroupIndex(tbl, []string{"country", "parameter", "unit"})
	if err != nil {
		b.Fatal(err)
	}
	cols := []*table.Column{tbl.Column("value")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scanRange(gi, cols, 0, tbl.NumRows()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tbl.NumRows()*b.N)/b.Elapsed().Seconds(), "rows/s")
}
