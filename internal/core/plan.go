package core

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/sample"
	"repro/internal/stats"
	"repro/internal/table"
)

// Plan is the precomputed state of CVOPT's offline phase for a table and
// a set of queries: the finest stratification C = ∪ A_i, the per-stratum
// statistics of every aggregation column (pass 1), and for every query
// the projection Π(·, A_i) with the coarse-group statistics it induces.
type Plan struct {
	Table   *table.Table
	Queries []QuerySpec

	StratAttrs []string          // C, in first-appearance order
	Index      *table.GroupIndex // finest stratification index
	Collector  *stats.Collector  // per-stratum stats, one column per aggCols entry

	aggCols   []string       // union of aggregation columns across queries
	aggColPos map[string]int // name -> position in Collector arity

	// Per query q: fine stratum id -> coarse group id, plus coarse keys
	// and merged coarse statistics.
	proj       [][]int
	coarseKeys [][]table.GroupKey
	coarse     [][]*stats.GroupStats
}

// NewPlan validates the queries, builds the finest stratification over
// the union of all group-by attributes, and performs the single
// statistics pass (Welford per stratum per aggregation column).
func NewPlan(tbl *table.Table, queries []QuerySpec) (*Plan, error) {
	if tbl == nil {
		return nil, errors.New("core: nil table")
	}
	if len(queries) == 0 {
		return nil, errors.New("core: no queries")
	}
	p := &Plan{Table: tbl, Queries: queries, aggColPos: map[string]int{}}
	seenAttr := map[string]bool{}
	for qi, q := range queries {
		if err := q.Validate(); err != nil {
			return nil, fmt.Errorf("core: query %d: %w", qi, err)
		}
		for _, a := range q.GroupBy {
			if !seenAttr[a] {
				seenAttr[a] = true
				p.StratAttrs = append(p.StratAttrs, a)
			}
		}
		for _, ac := range q.Aggs {
			if _, ok := p.aggColPos[ac.Column]; !ok {
				col := tbl.Column(ac.Column)
				if col == nil {
					return nil, fmt.Errorf("core: query %d aggregates unknown column %q", qi, ac.Column)
				}
				if col.Spec.Kind == table.String {
					return nil, fmt.Errorf("core: cannot aggregate string column %q", ac.Column)
				}
				p.aggColPos[ac.Column] = len(p.aggCols)
				p.aggCols = append(p.aggCols, ac.Column)
			}
		}
	}

	gi, err := table.BuildGroupIndex(tbl, p.StratAttrs)
	if err != nil {
		return nil, err
	}
	p.Index = gi

	// Pass 1: per-stratum statistics for every aggregation column. Large
	// tables are scanned by parallel workers over row ranges whose
	// per-stratum summaries merge exactly (Welford/Chan), so the result
	// is identical to a sequential scan.
	collector, err := collectStats(tbl, gi, p.aggCols)
	if err != nil {
		return nil, err
	}
	p.Collector = collector

	// Projections and coarse statistics per query.
	for _, q := range queries {
		f2c, keys, err := gi.Project(q.GroupBy)
		if err != nil {
			return nil, err
		}
		coarse := make([]*stats.GroupStats, len(keys))
		for i := range coarse {
			coarse[i] = stats.NewGroupStats(len(p.aggCols))
		}
		for fine, c := range f2c {
			if err := coarse[c].Merge(p.Collector.Group(fine)); err != nil {
				return nil, err
			}
		}
		p.proj = append(p.proj, f2c)
		p.coarseKeys = append(p.coarseKeys, keys)
		p.coarse = append(p.coarse, coarse)
	}
	return p, nil
}

// NumStrata returns |C|, the number of finest strata.
func (p *Plan) NumStrata() int { return p.Index.NumStrata() }

// AggColumns returns the union of aggregation columns, in plan order.
func (p *Plan) AggColumns() []string { return append([]string(nil), p.aggCols...) }

// StratumSizes returns n_c per stratum.
func (p *Plan) StratumSizes() []int64 { return p.Index.StratumSizes() }

// CoarseGroups returns, for query q, the coarse group keys and their
// merged statistics (n_a, µ_a, σ_a per aggregation column).
func (p *Plan) CoarseGroups(q int) ([]table.GroupKey, []*stats.GroupStats) {
	return p.coarseKeys[q], p.coarse[q]
}

// Betas computes the per-stratum allocation scores of the general MAMG
// formula (Section 4.2):
//
//	β_c = n_c² Σ_i [ 1/n²_{Π(c,A_i)} Σ_{ℓ∈L_i} w_{Π(c,A_i),ℓ} σ²_{c,ℓ} / µ²_{Π(c,A_i),ℓ} ]
//
// which specializes to α_i = Σ_j w_ij σ_ij²/µ_ij² for a single group-by
// (Theorems 1–2) and to Lemma 2/3's β for one or two queries. Strata
// whose coarse groups have zero mean contribute +Inf CV; the paper
// assumes non-zero means, so such terms are rejected with an error.
func (p *Plan) Betas() ([]float64, error) {
	nStrata := p.NumStrata()
	betas := make([]float64, nStrata)
	nc := p.StratumSizes()
	for qi, q := range p.Queries {
		f2c := p.proj[qi]
		keys := p.coarseKeys[qi]
		coarse := p.coarse[qi]
		for c := 0; c < nStrata; c++ {
			a := f2c[c]
			na := float64(coarse[a].N())
			if na == 0 {
				continue
			}
			var inner float64
			for _, ac := range q.Aggs {
				pos := p.aggColPos[ac.Column]
				sigma2 := p.Collector.Group(c).Cols[pos].Variance()
				if sigma2 == 0 {
					continue // constant stratum: no sampling need (paper §5)
				}
				mu := coarse[a].Cols[pos].Mean
				if mu == 0 {
					return nil, fmt.Errorf("core: group %q has zero mean on column %q; CV undefined (paper §1 assumes non-zero means)",
						keys[a].String(), ac.Column)
				}
				w := ac.weightFor(keys[a].String())
				inner += w * sigma2 / (mu * mu)
			}
			betas[c] += float64(nc[c]) * float64(nc[c]) * inner / (na * na)
		}
	}
	return betas, nil
}

// Allocate computes the integer sample-size assignment for budget M
// under the chosen norm. The returned slice has one entry per stratum of
// the finest stratification.
func (p *Plan) Allocate(m int, opts Options) ([]int, error) {
	if m <= 0 {
		return nil, fmt.Errorf("core: non-positive budget %d", m)
	}
	caps := p.StratumSizes()
	switch opts.Norm {
	case L2, Lp:
		betas, err := p.Betas()
		if err != nil {
			return nil, err
		}
		exp := 0.5
		if opts.Norm == Lp {
			if opts.P < 1 {
				return nil, fmt.Errorf("core: Lp norm requires P >= 1, got %v", opts.P)
			}
			exp = opts.P / (opts.P + 2)
		}
		real, err := powerAllocation(betas, float64(m), exp)
		if err != nil {
			return nil, err
		}
		return RoundAllocation(real, caps, m, opts.minPerStratum())
	case LInf:
		return p.allocateInf(m, opts)
	default:
		return nil, fmt.Errorf("core: unknown norm %v", opts.Norm)
	}
}

// Sample runs pass 2: draws Allocate's sizes uniformly without
// replacement within each stratum.
func (p *Plan) Sample(m int, opts Options, rng *rand.Rand) (*sample.StratifiedSample, []int, error) {
	sizes, err := p.Allocate(m, opts)
	if err != nil {
		return nil, nil, err
	}
	ss, err := sample.DrawStratified(p.Index.RowsByStratum(), sizes, p.StratAttrs, rng)
	if err != nil {
		return nil, nil, err
	}
	return ss, sizes, nil
}

// ObjectiveL2 evaluates the exact (finite-population-corrected) weighted
// squared-ℓ2 objective Σ_i w_i CV[y_i]² for a given integer allocation,
// summing over every (query, group, aggregate) estimate. Groups with an
// unsampled stratum contribute +Inf (the estimate is undefined), which is
// what makes Uniform lose on max error in the experiments. Used by tests
// to verify optimality and by the ablation benches.
func (p *Plan) ObjectiveL2(alloc []int) float64 {
	cvs, weights := p.perEstimateCVs(alloc)
	var total float64
	for i, cv := range cvs {
		total += weights[i] * cv * cv
	}
	return total
}

// ObjectiveLInf evaluates max_i CV[y_i] for an allocation (weights are
// not applied, matching Section 5).
func (p *Plan) ObjectiveLInf(alloc []int) float64 {
	cvs, _ := p.perEstimateCVs(alloc)
	m := 0.0
	for _, cv := range cvs {
		if cv > m {
			m = cv
		}
	}
	return m
}

// perEstimateCVs flattens PredictedCVs into parallel slices for the
// objective evaluators.
func (p *Plan) perEstimateCVs(alloc []int) (cvs, weights []float64) {
	for _, e := range p.PredictedCVs(alloc) {
		cvs = append(cvs, e.CV)
		weights = append(weights, e.Weight)
	}
	return cvs, weights
}

// DescribeAllocation renders an allocation for diagnostics: stratum key,
// population, sample size.
func (p *Plan) DescribeAllocation(alloc []int) string {
	var sb strings.Builder
	nc := p.StratumSizes()
	fmt.Fprintf(&sb, "stratification %v, %d strata\n", p.StratAttrs, p.NumStrata())
	for c := 0; c < p.NumStrata(); c++ {
		fmt.Fprintf(&sb, "  %-30s n=%-8d s=%d\n", p.Index.Key(c).String(), nc[c], alloc[c])
	}
	return sb.String()
}
