package core

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/sample"
	"repro/internal/stats"
	"repro/internal/table"
)

// StreamSampler is a one-pass variant of CVOPT addressing the paper's
// future-work item (3) (streaming data): when a second scan of the data
// is unaffordable, statistics and candidate samples are maintained
// simultaneously in a single pass, and the CVOPT allocation is applied
// afterwards by subsampling the per-stratum reservoirs.
//
// Mechanics: every incoming row updates its stratum's Welford statistics
// and is offered to that stratum's reservoir of capacity Cap. At
// Finalize, the exact CVOPT allocation s_c is computed from the
// collected statistics, additionally capped at Cap, and each reservoir
// is subsampled down to its allocation (a uniform subsample of a uniform
// reservoir is uniform, so estimator unbiasedness is preserved).
//
// The tradeoff against the two-pass plan is explicit: memory grows to
// O(#strata × Cap) during the pass, and any stratum whose optimal
// allocation exceeds Cap is clipped there, with the surplus budget
// redistributed among the remaining strata (never lost). With
// Cap >= max_c s_c the result is distributed identically to the
// two-pass CVOPT sample.
type StreamSampler struct {
	queries []QuerySpec
	attrs   []string // stratification C = union of group-by attributes
	cap     int
	rng     *rand.Rand

	aggCols   []string
	aggColPos map[string]int

	keyToID map[string]int
	keys    []table.GroupKey
	groups  []*stats.GroupStats
	res     []*sample.Reservoir
}

// NewStreamSampler prepares a one-pass sampler for the given queries.
// cap is the per-stratum reservoir capacity (the memory/accuracy knob).
func NewStreamSampler(queries []QuerySpec, capacity int, rng *rand.Rand) (*StreamSampler, error) {
	if len(queries) == 0 {
		return nil, errors.New("core: stream sampler needs at least one query")
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("core: non-positive reservoir capacity %d", capacity)
	}
	s := &StreamSampler{
		queries:   queries,
		cap:       capacity,
		rng:       rng,
		aggColPos: map[string]int{},
		keyToID:   map[string]int{},
	}
	seen := map[string]bool{}
	for qi, q := range queries {
		if err := q.Validate(); err != nil {
			return nil, fmt.Errorf("core: query %d: %w", qi, err)
		}
		for _, a := range q.GroupBy {
			if !seen[a] {
				seen[a] = true
				s.attrs = append(s.attrs, a)
			}
		}
		for _, ac := range q.Aggs {
			if _, ok := s.aggColPos[ac.Column]; !ok {
				s.aggColPos[ac.Column] = len(s.aggCols)
				s.aggCols = append(s.aggCols, ac.Column)
			}
		}
	}
	return s, nil
}

// Attrs returns the stratification attributes in key order; Observe's
// key argument must follow this order.
func (s *StreamSampler) Attrs() []string { return append([]string(nil), s.attrs...) }

// AggColumns returns the aggregation columns in the order Observe's vals
// argument must follow.
func (s *StreamSampler) AggColumns() []string { return append([]string(nil), s.aggCols...) }

// Observe consumes one stream element: its stratification key (values of
// Attrs, in order), its aggregate values (values of AggColumns, in
// order), and the row id that identifies it for later retrieval.
func (s *StreamSampler) Observe(key table.GroupKey, vals []float64, row int32) error {
	if len(key) != len(s.attrs) {
		return fmt.Errorf("core: stream key arity %d, want %d", len(key), len(s.attrs))
	}
	if len(vals) != len(s.aggCols) {
		return fmt.Errorf("core: stream value arity %d, want %d", len(vals), len(s.aggCols))
	}
	k := key.String()
	id, ok := s.keyToID[k]
	if !ok {
		id = len(s.keys)
		s.keyToID[k] = id
		s.keys = append(s.keys, append(table.GroupKey(nil), key...))
		s.groups = append(s.groups, stats.NewGroupStats(len(s.aggCols)))
		s.res = append(s.res, sample.NewReservoir(s.cap, s.rng))
	}
	s.groups[id].Add(vals)
	s.res[id].Offer(row)
	return nil
}

// NumStrata returns the number of strata discovered so far.
func (s *StreamSampler) NumStrata() int { return len(s.keys) }

// betas evaluates the MAMG allocation scores from the streamed
// statistics, mirroring Plan.Betas over the discovered strata.
func (s *StreamSampler) betas() ([]float64, error) {
	n := len(s.keys)
	betas := make([]float64, n)
	for _, q := range s.queries {
		// project stream strata onto the query's coarse groups
		pos := make([]int, len(q.GroupBy))
		for i, a := range q.GroupBy {
			p := -1
			for j, sa := range s.attrs {
				if sa == a {
					p = j
					break
				}
			}
			if p < 0 {
				return nil, fmt.Errorf("core: attribute %q missing from stream stratification", a)
			}
			pos[i] = p
		}
		coarseIdx := map[string]int{}
		var coarse []*stats.GroupStats
		var coarseKey []string
		f2c := make([]int, n)
		for id, key := range s.keys {
			parts := make([]string, len(pos))
			for i, p := range pos {
				parts[i] = key[p]
			}
			ck := table.GroupKey(parts).String()
			cid, ok := coarseIdx[ck]
			if !ok {
				cid = len(coarse)
				coarseIdx[ck] = cid
				coarse = append(coarse, stats.NewGroupStats(len(s.aggCols)))
				coarseKey = append(coarseKey, ck)
			}
			if err := coarse[cid].Merge(s.groups[id]); err != nil {
				return nil, err
			}
			f2c[id] = cid
		}
		for c := 0; c < n; c++ {
			a := f2c[c]
			na := float64(coarse[a].N())
			if na == 0 {
				continue
			}
			nc := float64(s.groups[c].N())
			var inner float64
			for _, ac := range q.Aggs {
				p := s.aggColPos[ac.Column]
				sigma2 := s.groups[c].Cols[p].Variance()
				if sigma2 == 0 {
					continue
				}
				mu := coarse[a].Cols[p].Mean
				if mu == 0 {
					return nil, fmt.Errorf("core: stream group %q has zero mean on column %q; CV undefined", coarseKey[a], ac.Column)
				}
				inner += ac.weightFor(coarseKey[a]) * sigma2 / (mu * mu)
			}
			betas[c] += nc * nc * inner / (na * na)
		}
	}
	return betas, nil
}

// Finalize computes the CVOPT allocation for budget m over the streamed
// statistics and subsamples each stratum's reservoir accordingly. The
// effective per-stratum cap is min(n_c, Cap); surplus beyond clipped
// strata is redistributed. The receiver remains usable (more Observe
// calls followed by another Finalize are allowed).
func (s *StreamSampler) Finalize(m int, opts Options) (*sample.StratifiedSample, error) {
	if m <= 0 {
		return nil, fmt.Errorf("core: non-positive budget %d", m)
	}
	if len(s.keys) == 0 {
		return nil, errors.New("core: no data streamed")
	}
	if opts.Norm != L2 && opts.Norm != Lp {
		return nil, fmt.Errorf("core: stream sampler supports L2/Lp norms, got %v", opts.Norm)
	}
	betas, err := s.betas()
	if err != nil {
		return nil, err
	}
	exp := 0.5
	if opts.Norm == Lp {
		if opts.P < 1 {
			return nil, fmt.Errorf("core: Lp norm requires P >= 1, got %v", opts.P)
		}
		exp = opts.P / (opts.P + 2)
	}
	real, err := powerAllocation(betas, float64(m), exp)
	if err != nil {
		return nil, err
	}
	caps := make([]int64, len(s.keys))
	for i := range caps {
		c := s.groups[i].N()
		if c > int64(len(s.res[i].Rows())) {
			c = int64(len(s.res[i].Rows())) // reservoir holds min(n_c, Cap)
		}
		caps[i] = c
	}
	sizes, err := RoundAllocation(real, caps, m, opts.minPerStratum())
	if err != nil {
		return nil, err
	}
	out := &sample.StratifiedSample{
		Attrs:  s.Attrs(),
		Strata: make([]sample.StratumSample, len(s.keys)),
	}
	for i := range s.keys {
		held := s.res[i].Rows()
		k := sizes[i]
		idx := sample.UniformWithoutReplacement(len(held), k, s.rng)
		picked := make([]int32, len(idx))
		for j, p := range idx {
			picked[j] = held[p]
		}
		out.Strata[i] = sample.StratumSample{PopulationN: s.groups[i].N(), Rows: picked}
	}
	return out, nil
}

// Key returns the key of stream stratum id.
func (s *StreamSampler) Key(id int) table.GroupKey { return s.keys[id] }

// StreamTable feeds an entire table through a StreamSampler (a
// convenience for tests and for simulating a stream from stored data).
func StreamTable(s *StreamSampler, tbl *table.Table) error {
	attrCols := make([]*table.Column, len(s.attrs))
	for i, a := range s.attrs {
		c := tbl.Column(a)
		if c == nil {
			return fmt.Errorf("core: unknown stream attribute %q", a)
		}
		attrCols[i] = c
	}
	aggCols := make([]*table.Column, len(s.aggCols))
	for i, a := range s.aggCols {
		c := tbl.Column(a)
		if c == nil {
			return fmt.Errorf("core: unknown stream aggregate column %q", a)
		}
		aggCols[i] = c
	}
	key := make(table.GroupKey, len(attrCols))
	vals := make([]float64, len(aggCols))
	for r := 0; r < tbl.NumRows(); r++ {
		for i, c := range attrCols {
			key[i] = c.StringAt(r)
		}
		for i, c := range aggCols {
			vals[i] = c.Numeric(r)
		}
		if err := s.Observe(key, vals, int32(r)); err != nil {
			return err
		}
	}
	return nil
}
