package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSqrtAllocationClosedForm(t *testing.T) {
	alphas := []float64{4, 1, 9}
	got, err := SqrtAllocation(alphas, 60)
	if err != nil {
		t.Fatal(err)
	}
	// sqrt = 2,1,3, total 6 -> shares 20,10,30
	want := []float64{20, 10, 30}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("alloc[%d] = %v want %v", i, got[i], want[i])
		}
	}
}

func TestSqrtAllocationDegenerate(t *testing.T) {
	got, err := SqrtAllocation([]float64{0, 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 || got[1] != 5 {
		t.Fatalf("all-zero alphas should split evenly, got %v", got)
	}
	if _, err := SqrtAllocation([]float64{-1}, 10); err == nil {
		t.Fatalf("want error on negative alpha")
	}
	if _, err := SqrtAllocation([]float64{math.Inf(1)}, 10); err == nil {
		t.Fatalf("want error on infinite alpha")
	}
	if _, err := SqrtAllocation([]float64{math.NaN()}, 10); err == nil {
		t.Fatalf("want error on NaN alpha")
	}
	if _, err := SqrtAllocation([]float64{1}, -5); err == nil {
		t.Fatalf("want error on negative budget")
	}
	empty, err := SqrtAllocation(nil, 10)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty alphas should give empty allocation")
	}
}

// Lemma 1 optimality: the closed form minimizes Σ α_i/s_i among all
// positive allocations summing to M. Verify by random perturbation.
func TestSqrtAllocationIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	objective := func(alphas, s []float64) float64 {
		var o float64
		for i := range alphas {
			o += alphas[i] / s[i]
		}
		return o
	}
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(8)
		alphas := make([]float64, k)
		for i := range alphas {
			alphas[i] = rng.Float64()*100 + 0.1
		}
		const m = 1000.0
		opt, err := SqrtAllocation(alphas, m)
		if err != nil {
			t.Fatal(err)
		}
		base := objective(alphas, opt)
		for p := 0; p < 40; p++ {
			// random feasible perturbation: move mass between two strata
			perturbed := append([]float64(nil), opt...)
			i, j := rng.Intn(k), rng.Intn(k)
			if i == j {
				continue
			}
			d := rng.Float64() * perturbed[i] * 0.5
			perturbed[i] -= d
			perturbed[j] += d
			if objective(alphas, perturbed) < base-1e-9 {
				t.Fatalf("perturbation beat the closed form: %v < %v", objective(alphas, perturbed), base)
			}
		}
	}
}

// Property: allocation is scale-invariant in alphas and sums to M.
func TestQuickSqrtAllocationInvariants(t *testing.T) {
	f := func(raw []float64, scale8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		alphas := make([]float64, len(raw))
		for i, x := range raw {
			alphas[i] = math.Mod(math.Abs(x), 1e6) + 1e-3
		}
		const m = 500.0
		a, err := SqrtAllocation(alphas, m)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range a {
			if v < 0 {
				return false
			}
			sum += v
		}
		if math.Abs(sum-m) > 1e-6*m {
			return false
		}
		// scaling all alphas by a constant leaves the allocation unchanged
		c := float64(scale8%9) + 2
		scaled := make([]float64, len(alphas))
		for i := range alphas {
			scaled[i] = alphas[i] * c
		}
		b, err := SqrtAllocation(scaled, m)
		if err != nil {
			return false
		}
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-6*(a[i]+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundAllocationBasic(t *testing.T) {
	real := []float64{2.6, 3.9, 3.5}
	caps := []int64{100, 100, 100}
	got, err := RoundAllocation(real, caps, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if SumInts(got) != 10 {
		t.Fatalf("sum = %d want 10 (%v)", SumInts(got), got)
	}
	// largest remainders get the leftover units: 2.6->3? floor 2,3,3 = 8,
	// remainders .6,.9,.5 -> +1 to idx1, +1 to idx0
	want := []int{3, 4, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestRoundAllocationCapsAndRedistribution(t *testing.T) {
	// Stratum 0 wants 90 but only has 5 rows; surplus must flow to others.
	real := []float64{90, 5, 5}
	caps := []int64{5, 1000, 1000}
	got, err := RoundAllocation(real, caps, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 {
		t.Fatalf("capped stratum got %d want 5", got[0])
	}
	if SumInts(got) != 100 {
		t.Fatalf("sum = %d want 100 (%v)", SumInts(got), got)
	}
	// the 85 surplus splits evenly between equal-share strata 1 and 2
	if math.Abs(float64(got[1]-got[2])) > 1 {
		t.Fatalf("surplus not split evenly: %v", got)
	}
}

func TestRoundAllocationBudgetExceedsPopulation(t *testing.T) {
	got, err := RoundAllocation([]float64{1, 1}, []int64{3, 4}, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 4 {
		t.Fatalf("budget >= population should take everything: %v", got)
	}
}

func TestRoundAllocationMinPerStratum(t *testing.T) {
	// Stratum 2 has tiny share but must still get one row.
	real := []float64{50, 49.999, 0.001}
	caps := []int64{1000, 1000, 10}
	got, err := RoundAllocation(real, caps, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[2] < 1 {
		t.Fatalf("min-per-stratum violated: %v", got)
	}
	if SumInts(got) != 100 {
		t.Fatalf("sum = %d (%v)", SumInts(got), got)
	}
	// disabled floor: zero share can stay zero
	got2, err := RoundAllocation(real, caps, 100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got2[2] != 0 {
		t.Fatalf("with floor disabled, zero-share stratum should stay 0: %v", got2)
	}
}

func TestRoundAllocationMinPerStratumInfeasible(t *testing.T) {
	// Budget 2 cannot give 1 to each of 3 strata; floor must not trigger.
	got, err := RoundAllocation([]float64{1, 1, 1}, []int64{10, 10, 10}, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if SumInts(got) != 2 {
		t.Fatalf("sum = %d want 2", SumInts(got))
	}
}

func TestRoundAllocationErrors(t *testing.T) {
	if _, err := RoundAllocation([]float64{1}, []int64{1, 2}, 5, 0); err == nil {
		t.Fatalf("want length mismatch error")
	}
	if _, err := RoundAllocation([]float64{1}, []int64{-1}, 5, 0); err == nil {
		t.Fatalf("want negative cap error")
	}
	got, err := RoundAllocation(nil, nil, 5, 0)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty input should give empty output")
	}
	got, err = RoundAllocation([]float64{1}, []int64{5}, 0, 0)
	if err != nil || got[0] != 0 {
		t.Fatalf("zero budget should allocate nothing")
	}
}

// Property: rounding respects caps, budget and floor for arbitrary inputs.
func TestQuickRoundAllocation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func(n8 uint8, m16 uint16) bool {
		n := int(n8)%20 + 1
		m := int(m16) % 5000
		real := make([]float64, n)
		caps := make([]int64, n)
		var totalCap int64
		for i := range real {
			real[i] = rng.Float64() * 100
			caps[i] = int64(rng.Intn(500))
			totalCap += caps[i]
		}
		got, err := RoundAllocation(real, caps, m, 1)
		if err != nil {
			return false
		}
		sum := 0
		for i, v := range got {
			if v < 0 || int64(v) > caps[i] {
				return false
			}
			sum += v
		}
		if int64(m) >= totalCap {
			return int64(sum) == totalCap
		}
		return sum <= m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCube(t *testing.T) {
	got := Cube([]string{"a", "b"})
	if len(got) != 3 {
		t.Fatalf("cube of 2 attrs should have 3 non-empty subsets, got %d", len(got))
	}
	// order: {a}, {b}, {a,b}
	if got[0][0] != "a" || got[1][0] != "b" || len(got[2]) != 2 {
		t.Fatalf("cube sets wrong: %v", got)
	}
	if Cube(nil) != nil {
		t.Fatalf("cube of nothing should be nil")
	}
	if len(Cube([]string{"x", "y", "z"})) != 7 {
		t.Fatalf("cube of 3 attrs should have 7 subsets")
	}
}

func TestCubeQueries(t *testing.T) {
	aggs := []AggColumn{{Column: "v"}}
	qs := CubeQueries([]string{"a", "b"}, aggs)
	if len(qs) != 3 {
		t.Fatalf("want 3 query specs, got %d", len(qs))
	}
	for _, q := range qs {
		if len(q.Aggs) != 1 || q.Aggs[0].Column != "v" {
			t.Fatalf("aggs not propagated: %+v", q)
		}
	}
}

func TestQuerySpecValidate(t *testing.T) {
	ok := QuerySpec{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []QuerySpec{
		{Aggs: []AggColumn{{Column: "v"}}},                                     // no group-by
		{GroupBy: []string{"g"}},                                               // no aggs
		{GroupBy: []string{"g", "g"}, Aggs: []AggColumn{{Column: "v"}}},        // dup attr
		{GroupBy: []string{"g"}, Aggs: []AggColumn{{}}},                        // empty column
		{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v", Weight: -1}}}, // negative weight
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d should fail validation", i)
		}
	}
}

func TestAggColumnWeightFor(t *testing.T) {
	a := AggColumn{Column: "v"}
	if a.weightFor("g") != 1 {
		t.Fatalf("default weight should be 1")
	}
	a.Weight = 3
	if a.weightFor("g") != 3 {
		t.Fatalf("base weight not used")
	}
	a.GroupWeights = map[string]float64{"g": 0.5}
	if a.weightFor("g") != 0.5 || a.weightFor("h") != 3 {
		t.Fatalf("group override wrong")
	}
}

func TestNormString(t *testing.T) {
	if L2.String() != "l2" || LInf.String() != "linf" || Lp.String() != "lp" {
		t.Fatalf("norm names wrong")
	}
	if Norm(9).String() == "" {
		t.Fatalf("unknown norm should render")
	}
}

func TestOptionsMinPerStratum(t *testing.T) {
	if (Options{}).minPerStratum() != 1 {
		t.Fatalf("default floor should be 1")
	}
	if (Options{MinPerStratum: -1}).minPerStratum() != 0 {
		t.Fatalf("negative disables floor")
	}
	if (Options{MinPerStratum: 3}).minPerStratum() != 3 {
		t.Fatalf("explicit floor ignored")
	}
}
