package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/table"
)

// buildTable constructs a table with controlled per-group distributions:
// each spec gives (group value, n, mean, sd) and rows get value =
// mean + sd*z with deterministic pseudo-noise.
type groupSpec struct {
	key  string
	n    int
	mean float64
	sd   float64
}

func makeTable(t testing.TB, specs []groupSpec) *table.Table {
	t.Helper()
	tbl := table.New("t", table.Schema{
		{Name: "g", Kind: table.String},
		{Name: "h", Kind: table.String},
		{Name: "v", Kind: table.Float},
		{Name: "u", Kind: table.Float},
	})
	rng := rand.New(rand.NewSource(99))
	for _, s := range specs {
		for i := 0; i < s.n; i++ {
			v := s.mean + s.sd*rng.NormFloat64()
			u := 2*s.mean + 0.5*s.sd*rng.NormFloat64()
			h := "h" + string(rune('0'+i%2))
			if err := tbl.AppendRow(s.key, h, v, u); err != nil {
				t.Fatal(err)
			}
		}
	}
	return tbl
}

func defaultSpecs() []groupSpec {
	return []groupSpec{
		{"a", 1000, 100, 50},
		{"b", 1000, 100, 5},
		{"c", 200, 10, 8},
		{"d", 50, 500, 100},
	}
}

// ampleSpecs gives every group enough rows that population caps never
// bind, so integer allocations can be compared against the uncapped
// closed forms of Theorems 1 and 2.
func ampleSpecs() []groupSpec {
	return []groupSpec{
		{"a", 5000, 100, 50},
		{"b", 5000, 100, 5},
		{"c", 5000, 10, 8},
		{"d", 5000, 500, 100},
	}
}

func TestNewPlanErrors(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	if _, err := NewPlan(nil, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}}); err == nil {
		t.Fatalf("want nil table error")
	}
	if _, err := NewPlan(tbl, nil); err == nil {
		t.Fatalf("want no-queries error")
	}
	if _, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}}}); err == nil {
		t.Fatalf("want invalid-spec error")
	}
	if _, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "zz"}}}}); err == nil {
		t.Fatalf("want unknown-column error")
	}
	if _, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "g"}}}}); err == nil {
		t.Fatalf("want string-aggregate error")
	}
	if _, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"zz"}, Aggs: []AggColumn{{Column: "v"}}}}); err == nil {
		t.Fatalf("want unknown group-by attribute error")
	}
}

func TestPlanStatsPass(t *testing.T) {
	specs := defaultSpecs()
	tbl := makeTable(t, specs)
	p, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumStrata() != 4 {
		t.Fatalf("strata = %d want 4", p.NumStrata())
	}
	sizes := p.StratumSizes()
	for _, s := range specs {
		id, ok := p.Index.ID(table.GroupKey{s.key})
		if !ok {
			t.Fatalf("group %s missing", s.key)
		}
		if sizes[id] != int64(s.n) {
			t.Fatalf("group %s size %d want %d", s.key, sizes[id], s.n)
		}
		g := p.Collector.Group(id)
		if math.Abs(g.Cols[0].Mean-s.mean) > 5*s.sd/math.Sqrt(float64(s.n)) {
			t.Fatalf("group %s mean %v far from %v", s.key, g.Cols[0].Mean, s.mean)
		}
	}
	if got := p.AggColumns(); len(got) != 1 || got[0] != "v" {
		t.Fatalf("agg columns = %v", got)
	}
}

// Theorem 1: SASG allocation proportional to sqrt(w)·σ/µ.
func TestAllocateSASGMatchesTheorem1(t *testing.T) {
	specs := ampleSpecs()
	tbl := makeTable(t, specs)
	p, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}})
	if err != nil {
		t.Fatal(err)
	}
	const m = 500
	alloc, err := p.Allocate(m, Options{Norm: L2, MinPerStratum: -1})
	if err != nil {
		t.Fatal(err)
	}
	if SumInts(alloc) != m {
		t.Fatalf("allocation sums to %d want %d", SumInts(alloc), m)
	}
	// compute expected shares from measured per-group stats
	var gamma []float64
	var gammaSum float64
	for c := 0; c < p.NumStrata(); c++ {
		g := p.Collector.Group(c).Cols[0]
		gi := g.StdDev() / g.Mean
		gamma = append(gamma, gi)
		gammaSum += gi
	}
	for c := 0; c < p.NumStrata(); c++ {
		want := float64(m) * gamma[c] / gammaSum
		if math.Abs(float64(alloc[c])-want) > math.Max(2, 0.02*want) {
			t.Fatalf("stratum %d alloc %d want ~%.1f", c, alloc[c], want)
		}
	}
	// group a (σ/µ=0.5) should receive 10x group b (σ/µ=0.05)
	ida, _ := p.Index.ID(table.GroupKey{"a"})
	idb, _ := p.Index.ID(table.GroupKey{"b"})
	ratio := float64(alloc[ida]) / float64(alloc[idb])
	if ratio < 7 || ratio > 13 {
		t.Fatalf("a:b allocation ratio %v, want ~10", ratio)
	}
}

// Theorem 2: MASG allocation proportional to sqrt(Σ_j w_j σ_j²/µ_j²).
func TestAllocateMASGMatchesTheorem2(t *testing.T) {
	tbl := makeTable(t, ampleSpecs())
	q := QuerySpec{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}, {Column: "u"}}}
	p, err := NewPlan(tbl, []QuerySpec{q})
	if err != nil {
		t.Fatal(err)
	}
	const m = 600
	alloc, err := p.Allocate(m, Options{MinPerStratum: -1})
	if err != nil {
		t.Fatal(err)
	}
	var alphas []float64
	var sqrtSum float64
	for c := 0; c < p.NumStrata(); c++ {
		var a float64
		for j := 0; j < 2; j++ {
			col := p.Collector.Group(c).Cols[j]
			cv := col.StdDev() / col.Mean
			a += cv * cv
		}
		alphas = append(alphas, a)
		sqrtSum += math.Sqrt(a)
	}
	for c := 0; c < p.NumStrata(); c++ {
		want := float64(m) * math.Sqrt(alphas[c]) / sqrtSum
		if math.Abs(float64(alloc[c])-want) > math.Max(2, 0.02*want) {
			t.Fatalf("stratum %d alloc %d want ~%.1f", c, alloc[c], want)
		}
	}
}

// Weights shift allocation: doubling the weight of one group must not
// decrease its allocation, and must increase it when others stay fixed.
func TestAllocateWeightMonotonicity(t *testing.T) {
	tbl := makeTable(t, ampleSpecs())
	base := QuerySpec{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}
	p, err := NewPlan(tbl, []QuerySpec{base})
	if err != nil {
		t.Fatal(err)
	}
	a0, err := p.Allocate(400, Options{MinPerStratum: -1})
	if err != nil {
		t.Fatal(err)
	}
	boosted := QuerySpec{GroupBy: []string{"g"}, Aggs: []AggColumn{{
		Column: "v", Weight: 1, GroupWeights: map[string]float64{"c": 16},
	}}}
	p2, err := NewPlan(tbl, []QuerySpec{boosted})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := p2.Allocate(400, Options{MinPerStratum: -1})
	if err != nil {
		t.Fatal(err)
	}
	idc, _ := p.Index.ID(table.GroupKey{"c"})
	if a1[idc] <= a0[idc] {
		t.Fatalf("16x weight on group c should increase its allocation: %d -> %d", a0[idc], a1[idc])
	}
	// Expected ratio from Theorem 1: boosting w_c by 16 multiplies γ_c by
	// 4 but also grows the normalizer, so the share ratio is
	// (4γ_c/(Σγ+3γ_c)) / (γ_c/Σγ).
	var gammaSum, gammaC float64
	for c := 0; c < p.NumStrata(); c++ {
		g := p.Collector.Group(c).Cols[0]
		gamma := g.StdDev() / g.Mean
		gammaSum += gamma
		if c == idc {
			gammaC = gamma
		}
	}
	wantRatio := (4 * gammaC / (gammaSum + 3*gammaC)) / (gammaC / gammaSum)
	ratio := float64(a1[idc]) / float64(a0[idc])
	if math.Abs(ratio-wantRatio) > 0.15*wantRatio {
		t.Fatalf("allocation boost ratio %v, want ~%v", ratio, wantRatio)
	}
}

// The integer L2 allocation should (near-)minimize the exact objective:
// no single-unit transfer between strata may improve it.
func TestAllocateL2LocalOptimality(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	p, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := p.Allocate(300, Options{MinPerStratum: -1})
	if err != nil {
		t.Fatal(err)
	}
	base := p.ObjectiveL2(alloc)
	nc := p.StratumSizes()
	for i := range alloc {
		for j := range alloc {
			if i == j || alloc[i] <= 1 || int64(alloc[j]+1) > nc[j] {
				continue
			}
			moved := append([]int(nil), alloc...)
			moved[i]--
			moved[j]++
			if p.ObjectiveL2(moved) < base*(1-1e-9) {
				t.Fatalf("transfer %d->%d improves objective: %v < %v", i, j, p.ObjectiveL2(moved), base)
			}
		}
	}
}

// SAMG (Lemma 2): two queries with different group-bys; the allocation
// must use the finest stratification of both.
func TestAllocateSAMG(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	qs := []QuerySpec{
		{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}},
		{GroupBy: []string{"h"}, Aggs: []AggColumn{{Column: "v"}}},
	}
	p, err := NewPlan(tbl, qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.StratAttrs) != 2 {
		t.Fatalf("stratification attrs = %v, want union {g,h}", p.StratAttrs)
	}
	// strata = (g,h) combinations: 4 groups x 2 h-values = 8
	if p.NumStrata() != 8 {
		t.Fatalf("strata = %d want 8", p.NumStrata())
	}
	alloc, err := p.Allocate(400, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if SumInts(alloc) != 400 {
		t.Fatalf("sum = %d", SumInts(alloc))
	}
	// Lemma-2 level check: allocation is locally optimal for the joint
	// objective.
	base := p.ObjectiveL2(alloc)
	nc := p.StratumSizes()
	for i := range alloc {
		for j := range alloc {
			if i == j || alloc[i] <= 1 || int64(alloc[j]+1) > nc[j] {
				continue
			}
			moved := append([]int(nil), alloc...)
			moved[i]--
			moved[j]++
			if p.ObjectiveL2(moved) < base*(1-1e-9) {
				t.Fatalf("transfer improves SAMG objective")
			}
		}
	}
	keys, coarse := p.CoarseGroups(0)
	if len(keys) != 4 || len(coarse) != 4 {
		t.Fatalf("query 0 coarse groups = %d want 4", len(keys))
	}
}

// MAMG (Lemma 3): different aggregates on different group-bys.
func TestAllocateMAMG(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	qs := []QuerySpec{
		{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}},
		{GroupBy: []string{"h"}, Aggs: []AggColumn{{Column: "u"}}},
	}
	p, err := NewPlan(tbl, qs)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.AggColumns(); len(got) != 2 {
		t.Fatalf("agg columns = %v", got)
	}
	alloc, err := p.Allocate(500, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if SumInts(alloc) != 500 {
		t.Fatalf("sum = %d", SumInts(alloc))
	}
}

func TestAllocateLp(t *testing.T) {
	tbl := makeTable(t, ampleSpecs())
	p, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate(100, Options{Norm: Lp, P: 0.5}); err == nil {
		t.Fatalf("want error for P < 1")
	}
	a2, err := p.Allocate(300, Options{Norm: Lp, P: 2, MinPerStratum: -1})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := p.Allocate(300, Options{Norm: L2, MinPerStratum: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a2 {
		if d := a2[i] - l2[i]; d < -1 || d > 1 {
			t.Fatalf("Lp with p=2 should match L2: %v vs %v", a2, l2)
		}
	}
	// higher p concentrates budget on the worst-CV group (group c has
	// σ/µ = 0.8, the largest)
	a8, err := p.Allocate(300, Options{Norm: Lp, P: 8, MinPerStratum: -1})
	if err != nil {
		t.Fatal(err)
	}
	idc, _ := p.Index.ID(table.GroupKey{"c"})
	if a8[idc] < a2[idc] {
		t.Fatalf("p=8 should give the worst-CV group at least as much as p=2: %d vs %d", a8[idc], a2[idc])
	}
}

func TestAllocateBadInputs(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	p, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate(0, Options{}); err == nil {
		t.Fatalf("want error for zero budget")
	}
	if _, err := p.Allocate(10, Options{Norm: Norm(77)}); err == nil {
		t.Fatalf("want error for unknown norm")
	}
}

func TestZeroMeanGroupRejected(t *testing.T) {
	tbl := table.New("t", table.Schema{{Name: "g", Kind: table.String}, {Name: "v", Kind: table.Float}})
	// two values whose Welford mean is exactly zero
	if err := tbl.AppendRow("z", 5.0); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AppendRow("z", -5.0); err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate(5, Options{}); err == nil || !strings.Contains(err.Error(), "zero mean") {
		t.Fatalf("want zero-mean error, got %v", err)
	}
	if _, err := p.Allocate(5, Options{Norm: LInf}); err == nil {
		t.Fatalf("INF should also reject zero-mean groups")
	}
}

func TestZeroVarianceGroupGetsMinimalSample(t *testing.T) {
	tbl := table.New("t", table.Schema{{Name: "g", Kind: table.String}, {Name: "v", Kind: table.Float}})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		if err := tbl.AppendRow("noisy", 100+rng.NormFloat64()*30); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if err := tbl.AppendRow("const", 7.0); err != nil {
			t.Fatal(err)
		}
	}
	p, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := p.Allocate(50, Options{})
	if err != nil {
		t.Fatal(err)
	}
	idc, _ := p.Index.ID(table.GroupKey{"const"})
	if alloc[idc] < 1 {
		t.Fatalf("constant group should still get its representative row, got %d", alloc[idc])
	}
	idn, _ := p.Index.ID(table.GroupKey{"noisy"})
	if alloc[idn] < 45 {
		t.Fatalf("noisy group should receive nearly the whole budget, got %d", alloc[idn])
	}
}

func TestSampleDrawsAllocation(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	p, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	ss, sizes, err := p.Sample(200, Options{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if ss.TotalSampled() != SumInts(sizes) {
		t.Fatalf("sample has %d rows, allocation says %d", ss.TotalSampled(), SumInts(sizes))
	}
	for c, st := range ss.Strata {
		if len(st.Rows) != sizes[c] {
			t.Fatalf("stratum %d drew %d want %d", c, len(st.Rows), sizes[c])
		}
		for _, r := range st.Rows {
			if int(p.Index.RowID[r]) != c {
				t.Fatalf("row %d drawn into wrong stratum", r)
			}
		}
	}
	// weights: each row's weight is n_c/s_c
	rows, weights := RowWeights(ss)
	if len(rows) != ss.TotalSampled() || len(weights) != len(rows) {
		t.Fatalf("weights shape wrong")
	}
	var est float64
	for _, w := range weights {
		est += w
	}
	if math.Abs(est-float64(tbl.NumRows())) > 1e-6*float64(tbl.NumRows()) {
		t.Fatalf("weighted count = %v want %d", est, tbl.NumRows())
	}
}

func TestDescribeAllocation(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	p, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := p.Allocate(100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := p.DescribeAllocation(alloc)
	if !strings.Contains(s, "4 strata") || !strings.Contains(s, "a") {
		t.Fatalf("description missing content:\n%s", s)
	}
}

func TestObjectiveInfinityOnMissingStratum(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	p, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}})
	if err != nil {
		t.Fatal(err)
	}
	alloc := []int{10, 10, 0, 10} // one stratum unsampled
	if !math.IsInf(p.ObjectiveL2(alloc), 1) {
		t.Fatalf("objective should be +Inf when a noisy stratum has no samples")
	}
	if !math.IsInf(p.ObjectiveLInf(alloc), 1) {
		t.Fatalf("linf objective should be +Inf too")
	}
}
