package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/exec"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

func TestPredictedCVsMatchClosedForm(t *testing.T) {
	tbl := makeTable(t, ampleSpecs())
	p, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := p.Allocate(400, Options{MinPerStratum: -1})
	if err != nil {
		t.Fatal(err)
	}
	preds := p.PredictedCVs(alloc)
	if len(preds) != p.NumStrata() {
		t.Fatalf("one prediction per group expected, got %d", len(preds))
	}
	nc := p.StratumSizes()
	for _, e := range preds {
		id, ok := p.Index.ID(table.GroupKey{e.Group})
		if !ok {
			t.Fatalf("unknown group %q", e.Group)
		}
		g := p.Collector.Group(id).Cols[0]
		n, s := float64(nc[id]), float64(alloc[id])
		want := g.StdDev() / g.Mean * math.Sqrt((n-s)/(n*s))
		if math.Abs(e.CV-want) > 1e-9*(want+1) {
			t.Fatalf("group %s predicted CV %v want %v", e.Group, e.CV, want)
		}
		if e.Column != "v" || e.Query != 0 || e.Weight != 1 {
			t.Fatalf("metadata wrong: %+v", e)
		}
	}
}

func TestPredictedCVsUnsampledStratumInfinite(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	p, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}})
	if err != nil {
		t.Fatal(err)
	}
	alloc := make([]int, p.NumStrata())
	for i := range alloc {
		alloc[i] = 10
	}
	alloc[0] = 0
	preds := p.PredictedCVs(alloc)
	foundInf := false
	for _, e := range preds {
		if math.IsInf(e.CV, 1) {
			foundInf = true
		}
	}
	if !foundInf {
		t.Fatalf("unsampled stratum should yield an infinite predicted CV")
	}
}

// The predicted CV should forecast realized relative errors: across many
// repetitions the observed per-group error spread tracks the predicted
// CV (the estimator's CV is the SD of the estimate over draws divided by
// its mean, and predicted CVs should rank groups by difficulty).
func TestPredictedCVsForecastRealizedErrors(t *testing.T) {
	tbl := makeTable(t, ampleSpecs())
	p, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}})
	if err != nil {
		t.Fatal(err)
	}
	const m = 400
	alloc, err := p.Allocate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	preds := map[string]float64{}
	for _, e := range p.PredictedCVs(alloc) {
		preds[e.Group] = e.CV
	}

	q, err := sqlparse.Parse("SELECT g, AVG(v) FROM t GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	exact, err := exec.Run(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	exactIdx := exact.Index()

	// realized per-group RMS relative error over repetitions
	const reps = 40
	rng := rand.New(rand.NewSource(17))
	sq := map[string]float64{}
	for rep := 0; rep < reps; rep++ {
		ss, _, err := p.Sample(m, Options{}, rng)
		if err != nil {
			t.Fatal(err)
		}
		rows, weights := RowWeights(ss)
		approx, err := exec.RunWeighted(tbl, q, rows, weights)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range approx.Rows {
			want := exactIdx[exec.KeyOf(row.Set, row.Key)][0]
			rel := (row.Aggs[0] - want) / want
			sq[row.Key[0]] += rel * rel
		}
	}
	for g, total := range sq {
		rms := math.Sqrt(total / reps)
		pred := preds[g]
		// RMS relative error should match predicted CV within a factor ~2
		// (finite reps, non-normal data)
		if rms > pred*2.5+0.01 || rms < pred/2.5-0.01 {
			t.Fatalf("group %s realized RMS err %v vs predicted CV %v", g, rms, pred)
		}
	}
}

func TestPredictedCVsMultiQuery(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	p, err := NewPlan(tbl, []QuerySpec{
		{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}},
		{GroupBy: []string{"h"}, Aggs: []AggColumn{{Column: "v"}, {Column: "u"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := p.Allocate(500, Options{})
	if err != nil {
		t.Fatal(err)
	}
	preds := p.PredictedCVs(alloc)
	// query 0: 4 groups x 1 agg; query 1: 2 groups x 2 aggs = 8 total
	if len(preds) != 8 {
		t.Fatalf("predictions = %d want 8", len(preds))
	}
	byQuery := map[int]int{}
	for _, e := range preds {
		byQuery[e.Query]++
		if e.CV < 0 {
			t.Fatalf("negative CV: %+v", e)
		}
	}
	if byQuery[0] != 4 || byQuery[1] != 4 {
		t.Fatalf("per-query prediction counts: %v", byQuery)
	}
}
