package core

import (
	"math"
	"testing"

	"repro/internal/table"
)

func TestAllocateInfEqualizesCVs(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	p, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}})
	if err != nil {
		t.Fatal(err)
	}
	const m = 400
	alloc, err := p.Allocate(m, Options{Norm: LInf, MinPerStratum: -1})
	if err != nil {
		t.Fatal(err)
	}
	if SumInts(alloc) > m+p.NumStrata() { // ceil rounding slack
		t.Fatalf("allocation exceeds budget too much: %d", SumInts(alloc))
	}
	// Lemma 4: at the optimum all per-group CVs are (approximately) equal.
	nc := p.StratumSizes()
	var cvs []float64
	for c := 0; c < p.NumStrata(); c++ {
		g := p.Collector.Group(c).Cols[0]
		n, s := float64(nc[c]), float64(alloc[c])
		if s <= 0 || s >= n {
			continue
		}
		cv := g.StdDev() / g.Mean * math.Sqrt((n-s)/(n*s))
		cvs = append(cvs, cv)
	}
	if len(cvs) < 3 {
		t.Fatalf("too few interior strata to check equalization")
	}
	minCV, maxCV := cvs[0], cvs[0]
	for _, cv := range cvs {
		minCV = math.Min(minCV, cv)
		maxCV = math.Max(maxCV, cv)
	}
	if (maxCV-minCV)/maxCV > 0.15 {
		t.Fatalf("CVs not equalized: min=%v max=%v (%v)", minCV, maxCV, cvs)
	}
}

// The ℓ∞ optimum must have a max CV no larger than the ℓ2 optimum's.
func TestInfBeatsL2OnMaxCV(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	p, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}})
	if err != nil {
		t.Fatal(err)
	}
	const m = 300
	inf, err := p.Allocate(m, Options{Norm: LInf, MinPerStratum: -1})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := p.Allocate(m, Options{Norm: L2, MinPerStratum: -1})
	if err != nil {
		t.Fatal(err)
	}
	if p.ObjectiveLInf(inf) > p.ObjectiveLInf(l2)*1.05 {
		t.Fatalf("INF max CV %v should not exceed L2's %v", p.ObjectiveLInf(inf), p.ObjectiveLInf(l2))
	}
	// conversely L2 should win on the l2 objective
	if p.ObjectiveL2(l2) > p.ObjectiveL2(inf)*1.05 {
		t.Fatalf("L2 objective of l2 alloc %v should not exceed INF's %v", p.ObjectiveL2(l2), p.ObjectiveL2(inf))
	}
}

func TestInfRejectsMultipleQueries(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	p, err := NewPlan(tbl, []QuerySpec{
		{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}},
		{GroupBy: []string{"h"}, Aggs: []AggColumn{{Column: "v"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Allocate(100, Options{Norm: LInf}); err == nil {
		t.Fatalf("INF with multiple group-bys should be rejected")
	}
}

func TestInfMultipleAggregatesUsesWorstCV(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	p, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}, {Column: "u"}}}})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := p.Allocate(200, Options{Norm: LInf})
	if err != nil {
		t.Fatal(err)
	}
	if SumInts(alloc) == 0 {
		t.Fatalf("empty allocation")
	}
}

func TestInfAllConstantGroups(t *testing.T) {
	tbl := table.New("t", table.Schema{{Name: "g", Kind: table.String}, {Name: "v", Kind: table.Float}})
	for i := 0; i < 50; i++ {
		key := "a"
		val := 3.0
		if i%2 == 0 {
			key, val = "b", 9.0
		}
		if err := tbl.AppendRow(key, val); err != nil {
			t.Fatal(err)
		}
	}
	p, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := p.Allocate(10, Options{Norm: LInf})
	if err != nil {
		t.Fatal(err)
	}
	if SumInts(alloc) == 0 || alloc[0] == 0 || alloc[1] == 0 {
		t.Fatalf("constant groups should still be covered: %v", alloc)
	}
}

func TestInfSmallBudget(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	p, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := p.Allocate(4, Options{Norm: LInf})
	if err != nil {
		t.Fatal(err)
	}
	if SumInts(alloc) > 4 {
		t.Fatalf("tiny budget exceeded: %v", alloc)
	}
}
