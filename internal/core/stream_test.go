package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/exec"
	"repro/internal/sqlparse"
	"repro/internal/table"
)

func streamSpecs() []QuerySpec {
	return []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}}
}

func TestStreamSamplerValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewStreamSampler(nil, 10, rng); err == nil {
		t.Fatalf("want error for no queries")
	}
	if _, err := NewStreamSampler(streamSpecs(), 0, rng); err == nil {
		t.Fatalf("want error for zero capacity")
	}
	s, err := NewStreamSampler(streamSpecs(), 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(table.GroupKey{"a", "b"}, []float64{1}, 0); err == nil {
		t.Fatalf("want key arity error")
	}
	if err := s.Observe(table.GroupKey{"a"}, []float64{1, 2}, 0); err == nil {
		t.Fatalf("want value arity error")
	}
	if _, err := s.Finalize(10, Options{}); err == nil {
		t.Fatalf("want error for empty stream")
	}
	if err := s.Observe(table.GroupKey{"a"}, []float64{1}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Finalize(0, Options{}); err == nil {
		t.Fatalf("want error for zero budget")
	}
	if _, err := s.Finalize(10, Options{Norm: LInf}); err == nil {
		t.Fatalf("stream sampler should reject LInf")
	}
	if _, err := s.Finalize(10, Options{Norm: Lp, P: 0.2}); err == nil {
		t.Fatalf("want error for bad P")
	}
}

func TestStreamSamplerMatchesTwoPassStats(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	rng := rand.New(rand.NewSource(2))
	s, err := NewStreamSampler(streamSpecs(), 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := StreamTable(s, tbl); err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(tbl, streamSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if s.NumStrata() != plan.NumStrata() {
		t.Fatalf("stream found %d strata, plan %d", s.NumStrata(), plan.NumStrata())
	}
	// per-stratum statistics identical to the offline pass
	for id := 0; id < s.NumStrata(); id++ {
		pid, ok := plan.Index.ID(s.Key(id))
		if !ok {
			t.Fatalf("stream stratum %v unknown to plan", s.Key(id))
		}
		sg, pg := s.groups[id].Cols[0], plan.Collector.Group(pid).Cols[0]
		if sg.N != pg.N || math.Abs(sg.Mean-pg.Mean) > 1e-9 || math.Abs(sg.Variance()-pg.Variance()) > 1e-6 {
			t.Fatalf("stratum %v stream stats %+v vs plan %+v", s.Key(id), sg, pg)
		}
	}
}

// With a generous reservoir the one-pass allocation matches two-pass
// CVOPT exactly.
func TestStreamSamplerMatchesTwoPassAllocation(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	rng := rand.New(rand.NewSource(3))
	const m = 300
	s, err := NewStreamSampler(streamSpecs(), m, rng) // Cap = M >= any s_c
	if err != nil {
		t.Fatal(err)
	}
	if err := StreamTable(s, tbl); err != nil {
		t.Fatal(err)
	}
	ss, err := s.Finalize(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(tbl, streamSpecs())
	if err != nil {
		t.Fatal(err)
	}
	twoPass, err := plan.Allocate(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ss.TotalSampled() != SumInts(twoPass) {
		t.Fatalf("stream drew %d rows, two-pass %d", ss.TotalSampled(), SumInts(twoPass))
	}
	for id := 0; id < s.NumStrata(); id++ {
		pid, _ := plan.Index.ID(s.Key(id))
		if len(ss.Strata[id].Rows) != twoPass[pid] {
			t.Fatalf("stratum %v stream size %d vs two-pass %d", s.Key(id), len(ss.Strata[id].Rows), twoPass[pid])
		}
		if ss.Strata[id].PopulationN != plan.StratumSizes()[pid] {
			t.Fatalf("population mismatch")
		}
		// drawn rows belong to the right stratum
		for _, r := range ss.Strata[id].Rows {
			if int(plan.Index.RowID[r]) != pid {
				t.Fatalf("row %d drawn into wrong stratum", r)
			}
		}
	}
}

// With a tight reservoir the allocation is clipped at Cap and the budget
// is still fully spent (redistribution, not loss).
func TestStreamSamplerCapClipping(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	rng := rand.New(rand.NewSource(4))
	// total reservoir capacity is 60+60+60+50 = 230, so a budget of 200
	// is spendable while the high-CV strata still hit the cap
	const m, capSize = 200, 60
	s, err := NewStreamSampler(streamSpecs(), capSize, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := StreamTable(s, tbl); err != nil {
		t.Fatal(err)
	}
	ss, err := s.Finalize(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ss.TotalSampled() != m {
		t.Fatalf("budget underused: %d of %d", ss.TotalSampled(), m)
	}
	for id := range ss.Strata {
		if len(ss.Strata[id].Rows) > capSize {
			t.Fatalf("stratum %d exceeded reservoir cap: %d", id, len(ss.Strata[id].Rows))
		}
		seen := map[int32]bool{}
		for _, r := range ss.Strata[id].Rows {
			if seen[r] {
				t.Fatalf("duplicate row %d in stream sample", r)
			}
			seen[r] = true
		}
	}
}

// End-to-end: the one-pass sample answers queries with accuracy in the
// same ballpark as the two-pass sample.
func TestStreamSamplerEstimates(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	rng := rand.New(rand.NewSource(5))
	const m = 400
	s, err := NewStreamSampler(streamSpecs(), m, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := StreamTable(s, tbl); err != nil {
		t.Fatal(err)
	}
	ss, err := s.Finalize(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows, weights := RowWeights(ss)
	q, err := sqlparse.Parse("SELECT g, AVG(v) FROM t GROUP BY g")
	if err != nil {
		t.Fatal(err)
	}
	exact, err := exec.Run(tbl, q)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := exec.RunWeighted(tbl, q, rows, weights)
	if err != nil {
		t.Fatal(err)
	}
	idx := approx.Index()
	for _, row := range exact.Rows {
		est, ok := idx[exec.KeyOf(row.Set, row.Key)]
		if !ok {
			t.Fatalf("group %v missing from stream sample answer", row.Key)
		}
		rel := math.Abs(est[0]-row.Aggs[0]) / math.Abs(row.Aggs[0])
		if rel > 0.35 {
			t.Fatalf("group %v error %v too high for m=400", row.Key, rel)
		}
	}
}

// Multiple group-bys through the stream path.
func TestStreamSamplerMultiQuery(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	rng := rand.New(rand.NewSource(6))
	qs := []QuerySpec{
		{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}},
		{GroupBy: []string{"h"}, Aggs: []AggColumn{{Column: "u"}}},
	}
	s, err := NewStreamSampler(qs, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Attrs(); len(got) != 2 {
		t.Fatalf("attrs = %v", got)
	}
	if got := s.AggColumns(); len(got) != 2 {
		t.Fatalf("agg cols = %v", got)
	}
	if err := StreamTable(s, tbl); err != nil {
		t.Fatal(err)
	}
	ss, err := s.Finalize(200, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ss.TotalSampled() != 200 {
		t.Fatalf("sampled %d", ss.TotalSampled())
	}
	if s.NumStrata() != 8 {
		t.Fatalf("strata = %d want 8 (4 g-groups x 2 h-values)", s.NumStrata())
	}
}

// Incremental maintenance: after Finalize, more data may arrive and a
// later Finalize reflects it — new strata appear, statistics update.
func TestStreamSamplerIncrementalRefinalize(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s, err := NewStreamSampler(streamSpecs(), 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 500; i++ {
		if err := s.Observe(table.GroupKey{"early"}, []float64{100 + float64(i%7)}, i); err != nil {
			t.Fatal(err)
		}
	}
	first, err := s.Finalize(40, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Strata) != 1 {
		t.Fatalf("first finalize should see 1 stratum")
	}
	// a new group arrives later with large relative variance
	for i := int32(500); i < 600; i++ {
		if err := s.Observe(table.GroupKey{"late"}, []float64{10 + 8*rng.NormFloat64()}, i); err != nil {
			t.Fatal(err)
		}
	}
	second, err := s.Finalize(40, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Strata) != 2 {
		t.Fatalf("second finalize should see 2 strata")
	}
	if s.NumStrata() != 2 {
		t.Fatalf("NumStrata = %d", s.NumStrata())
	}
	// the noisy late group should dominate the allocation
	lateID := -1
	for id := 0; id < s.NumStrata(); id++ {
		if s.Key(id).String() == "late" {
			lateID = id
		}
	}
	if lateID < 0 {
		t.Fatalf("late stratum missing")
	}
	if len(second.Strata[lateID].Rows) < 20 {
		t.Fatalf("high-CV late group got %d of 40 rows", len(second.Strata[lateID].Rows))
	}
}

func TestStreamTableErrors(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	rng := rand.New(rand.NewSource(7))
	s, err := NewStreamSampler([]QuerySpec{{GroupBy: []string{"zz"}, Aggs: []AggColumn{{Column: "v"}}}}, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := StreamTable(s, tbl); err == nil {
		t.Fatalf("want unknown attribute error")
	}
	s2, err := NewStreamSampler([]QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "zz"}}}}, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := StreamTable(s2, tbl); err == nil {
		t.Fatalf("want unknown aggregate column error")
	}
}
