// Package core implements CVOPT, the paper's contribution: a stratified
// sampling framework that, given a memory budget of M rows and a set of
// group-by queries, allocates sample sizes to strata so that a norm of
// the coefficients of variation (CVs) of all per-group estimates is
// provably minimized.
//
// The package covers every regime of the paper:
//
//   - SASG (Theorem 1):  single aggregate, single group-by,
//   - MASG (Theorem 2):  multiple aggregates, single group-by,
//   - SAMG (Lemma 2):    single aggregate, multiple group-bys,
//   - MAMG (Lemma 3 and its k-query generalization): the general case,
//
// under the ℓ2 norm, plus the ℓ∞ algorithm of Section 5 (CVOPT-INF) and
// an ℓp extension (the paper's future-work item (2)). Weights may be
// given per (group, aggregate), including weights deduced from a query
// workload (Section 4.3, package function WorkloadWeights).
//
// The flow mirrors the paper's two offline passes: NewPlan performs the
// statistics pass (per-stratum n, µ, σ for every aggregation column);
// Plan.Allocate solves the optimization; Plan.Sample draws the
// per-stratum reservoir samples.
package core

import (
	"errors"
	"fmt"
)

// Norm selects the objective aggregating the per-estimate CVs.
type Norm uint8

// Supported norms.
const (
	L2   Norm = iota // minimize sqrt(Σ w·CV²)  — the paper's default
	LInf             // minimize max CV         — CVOPT-INF (Section 5)
	Lp               // minimize (Σ w·CV^p)^1/p — extension, requires Options.P
)

func (n Norm) String() string {
	switch n {
	case L2:
		return "l2"
	case LInf:
		return "linf"
	case Lp:
		return "lp"
	}
	return fmt.Sprintf("Norm(%d)", uint8(n))
}

// AggColumn names one aggregation column of a query together with its
// weight(s). Weight is the base weight w for every group of the query;
// GroupWeights optionally overrides the weight for specific groups, keyed
// by the GroupKey.String() of the query's group-by attribute values (the
// mechanism behind both user priorities and workload-derived weights).
type AggColumn struct {
	Column       string
	Weight       float64            // default 1 when zero
	GroupWeights map[string]float64 // optional per-group override (absolute, not multiplier)
}

func (a AggColumn) weightFor(groupKey string) float64 {
	if a.GroupWeights != nil {
		if w, ok := a.GroupWeights[groupKey]; ok {
			return w
		}
	}
	if a.Weight == 0 {
		return 1
	}
	return a.Weight
}

// QuerySpec describes one group-by query the sample must serve: the
// group-by attribute set A_i and the aggregation columns L_i.
type QuerySpec struct {
	GroupBy []string
	Aggs    []AggColumn
}

// Validate reports obviously malformed specs.
func (q QuerySpec) Validate() error {
	if len(q.GroupBy) == 0 {
		return errors.New("core: query has no group-by attributes")
	}
	if len(q.Aggs) == 0 {
		return errors.New("core: query has no aggregation columns")
	}
	seen := map[string]bool{}
	for _, a := range q.GroupBy {
		if seen[a] {
			return fmt.Errorf("core: duplicate group-by attribute %q", a)
		}
		seen[a] = true
	}
	for _, a := range q.Aggs {
		if a.Column == "" {
			return errors.New("core: aggregation column with empty name")
		}
		if a.Weight < 0 {
			return fmt.Errorf("core: negative weight for column %q", a.Column)
		}
	}
	return nil
}

// Options tunes allocation.
type Options struct {
	Norm Norm
	// P is the exponent for Norm == Lp (must be >= 1). P is ignored for
	// L2 and LInf.
	P float64
	// MinPerStratum, when the budget permits (M >= number of strata),
	// guarantees each stratum at least this many rows so no group is
	// missing from the sample. Default 1; set negative to disable.
	MinPerStratum int
}

func (o Options) minPerStratum() int {
	if o.MinPerStratum < 0 {
		return 0
	}
	if o.MinPerStratum == 0 {
		return 1
	}
	return o.MinPerStratum
}

// Cube expands a set of attributes into the grouping sets of a CUBE
// group-by (every non-empty subset; the full-table no-group-by query has
// a single global answer and needs no stratified allocation of its own —
// any stratified sample answers it). Attribute order inside each subset
// follows the input order. Used to build QuerySpecs for WITH CUBE
// workloads (Section 4.1 "Cube-By Queries").
func Cube(attrs []string) [][]string {
	if len(attrs) == 0 {
		return nil
	}
	var out [][]string
	n := len(attrs)
	for mask := 1; mask < 1<<n; mask++ {
		var set []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				set = append(set, attrs[i])
			}
		}
		out = append(out, set)
	}
	return out
}

// CubeQueries builds one QuerySpec per grouping set of a CUBE over attrs,
// all sharing the same aggregation columns.
func CubeQueries(attrs []string, aggs []AggColumn) []QuerySpec {
	sets := Cube(attrs)
	out := make([]QuerySpec, 0, len(sets))
	for _, s := range sets {
		out = append(out, QuerySpec{GroupBy: s, Aggs: aggs})
	}
	return out
}
