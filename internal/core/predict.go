package core

import (
	"math"
)

// EstimateCV is the predicted coefficient of variation of one per-group
// estimator under a candidate allocation — the quantity the CVOPT
// objective aggregates. Via Chebyshev (Section 1), the relative error of
// the estimate exceeds ε with probability at most (CV/ε)²; PredictedCVs
// therefore doubles as an a-priori error report for a sample before it
// is drawn.
type EstimateCV struct {
	Query  int     // index into the plan's queries
	Group  string  // rendered group key (GroupKey.String())
	Column string  // aggregation column
	CV     float64 // predicted CV; +Inf when a needed stratum is unsampled
	Weight float64 // the weight this estimate carries in the objective
}

// PredictedCVs computes, for every (query, group, aggregate) estimate,
// the CV implied by the given integer allocation using
// VAR[y_a] = 1/n_a² Σ_{c∈C(a)} [n_c²σ_c²/s_c − n_cσ_c²] (Section 4.1).
func (p *Plan) PredictedCVs(alloc []int) []EstimateCV {
	nc := p.StratumSizes()
	var out []EstimateCV
	for qi, q := range p.Queries {
		f2c := p.proj[qi]
		keys := p.coarseKeys[qi]
		coarse := p.coarse[qi]
		for a := range keys {
			na := float64(coarse[a].N())
			if na == 0 {
				continue
			}
			for _, ac := range q.Aggs {
				pos := p.aggColPos[ac.Column]
				mu := coarse[a].Cols[pos].Mean
				var varY float64
				undefined := false
				for c := 0; c < len(f2c); c++ {
					if f2c[c] != a {
						continue
					}
					sigma2 := p.Collector.Group(c).Cols[pos].Variance()
					if sigma2 == 0 {
						continue
					}
					s := float64(alloc[c])
					if s <= 0 {
						undefined = true
						break
					}
					n := float64(nc[c])
					varY += (n*n*sigma2/s - n*sigma2) / (na * na)
				}
				cv := math.Inf(1)
				switch {
				case undefined:
				case mu == 0 && varY == 0:
					cv = 0
				case mu != 0:
					cv = math.Sqrt(math.Max(varY, 0)) / math.Abs(mu)
				}
				out = append(out, EstimateCV{
					Query:  qi,
					Group:  keys[a].String(),
					Column: ac.Column,
					CV:     cv,
					Weight: ac.weightFor(keys[a].String()),
				})
			}
		}
	}
	return out
}
