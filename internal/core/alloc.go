package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// SqrtAllocation is the Lemma 1 solution: minimize Σ α_i/s_i subject to
// Σ s_i = M over positive reals, which gives s_i = M·√α_i / Σ_j √α_j.
// Negative αs are rejected; an all-zero α vector yields a uniform split.
func SqrtAllocation(alphas []float64, m float64) ([]float64, error) {
	return powerAllocation(alphas, m, 0.5)
}

// powerAllocation assigns s_i ∝ α_i^exp (exp in (0,1]); exp = 1/2 is
// Lemma 1 (ℓ2), exp = p/(p+2) is the ℓp generalization without the
// finite-population correction.
func powerAllocation(alphas []float64, m float64, exp float64) ([]float64, error) {
	if m < 0 {
		return nil, fmt.Errorf("core: negative budget %v", m)
	}
	out := make([]float64, len(alphas))
	var total float64
	for i, a := range alphas {
		if a < 0 || math.IsNaN(a) {
			return nil, fmt.Errorf("core: invalid alpha[%d] = %v", i, a)
		}
		if math.IsInf(a, 1) {
			return nil, fmt.Errorf("core: infinite alpha[%d]", i)
		}
		out[i] = math.Pow(a, exp)
		total += out[i]
	}
	if total == 0 {
		// degenerate: all groups have zero relative variance; split evenly.
		if len(out) > 0 {
			even := m / float64(len(out))
			for i := range out {
				out[i] = even
			}
		}
		return out, nil
	}
	for i := range out {
		out[i] = m * out[i] / total
	}
	return out, nil
}

// RoundAllocation converts a real-valued allocation into integers that
// (a) sum to at most M, (b) never exceed the stratum population caps,
// (c) when the budget permits, give every non-empty stratum at least
// minPer rows, and (d) redistribute budget freed by caps to the remaining
// strata in proportion to their real allocation (water-filling). This is
// the "repair" step that lets CVOPT handle small groups that RL breaks
// on (Section 6.1).
func RoundAllocation(real []float64, caps []int64, m int, minPer int) ([]int, error) {
	if len(real) != len(caps) {
		return nil, fmt.Errorf("core: %d allocations vs %d caps", len(real), len(caps))
	}
	n := len(real)
	out := make([]int, n)
	if n == 0 || m <= 0 {
		return out, nil
	}

	// Clamp the total possible allocation: if the budget exceeds the
	// population, everything is taken in full.
	var totalCap int64
	for _, c := range caps {
		if c < 0 {
			return nil, errors.New("core: negative stratum cap")
		}
		totalCap += c
	}
	if int64(m) >= totalCap {
		for i, c := range caps {
			out[i] = int(c)
		}
		return out, nil
	}

	// Water-filling over the real allocation: repeatedly cap strata whose
	// proportional share exceeds their population and re-share the rest.
	share := append([]float64(nil), real...)
	capped := make([]bool, n)
	budget := float64(m)
	for {
		var sumShare float64
		for i := range share {
			if !capped[i] {
				sumShare += share[i]
			}
		}
		if sumShare <= 0 {
			break
		}
		overflow := false
		scale := budget / sumShare
		for i := range share {
			if capped[i] {
				continue
			}
			if share[i]*scale >= float64(caps[i]) {
				capped[i] = true
				budget -= float64(caps[i])
				overflow = true
			}
		}
		if !overflow {
			for i := range share {
				if !capped[i] {
					share[i] *= scale
				} else {
					share[i] = float64(caps[i])
				}
			}
			break
		}
	}
	for i := range share {
		if capped[i] {
			share[i] = float64(caps[i])
		}
	}

	// Largest-remainder rounding within caps.
	type rem struct {
		i int
		f float64
	}
	rems := make([]rem, 0, n)
	used := 0
	for i, s := range share {
		fl := math.Floor(s)
		if fl > float64(caps[i]) {
			fl = float64(caps[i])
		}
		out[i] = int(fl)
		used += out[i]
		rems = append(rems, rem{i, s - fl})
	}
	sort.Slice(rems, func(a, b int) bool { return rems[a].f > rems[b].f })
	for _, r := range rems {
		if used >= m {
			break
		}
		if int64(out[r.i]) < caps[r.i] {
			out[r.i]++
			used++
		}
	}
	// Any residual budget (possible when many strata hit caps mid-round)
	// goes to uncapped strata in descending real-share order.
	if used < m {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return share[order[a]] > share[order[b]] })
		for used < m {
			progress := false
			for _, i := range order {
				if used >= m {
					break
				}
				if int64(out[i]) < caps[i] {
					out[i]++
					used++
					progress = true
				}
			}
			if !progress {
				break
			}
		}
	}

	// Minimum-representation repair: if the budget can cover minPer rows
	// for every non-empty stratum, steal from the largest allocations.
	if minPer > 0 {
		var nonEmpty int
		for _, c := range caps {
			if c > 0 {
				nonEmpty++
			}
		}
		if m >= nonEmpty*minPer {
			for i := range out {
				want := minPer
				if int64(want) > caps[i] {
					want = int(caps[i])
				}
				for out[i] < want {
					j := richestAbove(out, caps, minPer)
					if j < 0 {
						break
					}
					out[j]--
					out[i]++
				}
			}
		}
	}
	return out, nil
}

// richestAbove returns the index with the largest allocation strictly
// above minPer (so stealing cannot push a donor below the floor), or -1.
func richestAbove(out []int, caps []int64, minPer int) int {
	best, bestV := -1, minPer
	for i, v := range out {
		if v > bestV && caps[i] > 0 {
			best, bestV = i, v
		}
	}
	return best
}

// SumInts is a small helper used across the package and its tests.
func SumInts(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
