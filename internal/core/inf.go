package core

import (
	"fmt"
)

// allocateInf implements CVOPT-INF (Section 5): minimize the ℓ∞ norm of
// the per-group CVs,
//
//	max_i (σ_i/µ_i)·sqrt((n_i − s_i)/(n_i·s_i)),
//
// subject to Σ s_i ≤ M. By Lemma 4 the optimum equalizes all CVs, which
// reduces to x_i/(n_i − x_i) ∝ d_i with d_i = (σ_i/µ_i)²/n_i; the
// algorithm binary-searches the largest integer q ∈ [0, n] such that
//
//	Σ_i  (q·d_i/D)/(1 + q·d_i/D) · n_i  ≤  M,
//
// then assigns s_i = x_i/Σx_j · M (rounded within caps). Total time is
// O(r log n), matching the paper.
//
// The paper defines CVOPT-INF for a single group-by clause; with several
// aggregation columns the per-group CV is the worst CV across that
// group's aggregates, a conservative and natural extension. Multiple
// group-by queries are rejected.
func (p *Plan) allocateInf(m int, opts Options) ([]int, error) {
	if len(p.Queries) != 1 {
		return nil, fmt.Errorf("core: CVOPT-INF supports a single group-by query (got %d); the paper defines the ℓ∞ algorithm for SASG", len(p.Queries))
	}
	q := p.Queries[0]
	nc := p.StratumSizes()
	r := p.NumStrata()

	// d_i = (σ_i/µ_i)²/n_i per stratum; several aggregates take the max.
	// A stratification for a single query is exactly its grouping, so the
	// projection is the identity and stratum stats are group stats.
	d := make([]float64, r)
	var totalN int64
	for c := 0; c < r; c++ {
		totalN += nc[c]
		for _, ac := range q.Aggs {
			pos := p.aggColPos[ac.Column]
			col := p.Collector.Group(c).Cols[pos]
			if col.Mean == 0 {
				if col.Variance() == 0 {
					continue // constant zero group: no sampling need
				}
				return nil, fmt.Errorf("core: group %q has zero mean on column %q; CV undefined",
					p.Index.Key(c).String(), ac.Column)
			}
			cv := col.StdDev() / col.Mean
			if cv < 0 {
				cv = -cv
			}
			di := cv * cv / float64(nc[c])
			if di > d[c] {
				d[c] = di
			}
		}
	}

	var dTotal float64
	for _, di := range d {
		dTotal += di
	}
	if dTotal == 0 {
		// Every group is constant; any coverage works. Spread evenly.
		real := make([]float64, r)
		even := float64(m) / float64(r)
		for i := range real {
			real[i] = even
		}
		return RoundAllocation(real, nc, m, opts.minPerStratum())
	}

	// x_i(q) as in the paper; S(q) = Σ x_i(q) is increasing in q.
	xs := func(qv float64) ([]float64, float64) {
		x := make([]float64, r)
		var sum float64
		for i := 0; i < r; i++ {
			t := qv * d[i] / dTotal
			x[i] = t / (1 + t) * float64(nc[i])
			sum += x[i]
		}
		return x, sum
	}

	// Binary search the largest integer q in [0, totalN] with S(q) <= M.
	lo, hi := int64(0), totalN
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if _, s := xs(float64(mid)); s <= float64(m) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	qv := lo
	if qv == 0 {
		qv = 1
	}
	x, sum := xs(float64(qv))
	if sum <= 0 {
		return nil, fmt.Errorf("core: CVOPT-INF degenerate allocation (q=%d)", qv)
	}
	// Scale to the budget and round within caps (the paper's
	// s_i = ceil(x_i/Σx_j · M), with cap/repair as in RoundAllocation).
	for i := range x {
		x[i] = x[i] / sum * float64(m)
	}
	return RoundAllocation(x, nc, m, opts.minPerStratum())
}
