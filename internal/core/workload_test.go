package core

import (
	"testing"

	"repro/internal/table"
)

// paperStudentTable reproduces Table 1 of the paper exactly.
func paperStudentTable(t testing.TB) *table.Table {
	tbl := table.New("student", table.Schema{
		{Name: "id", Kind: table.Int},
		{Name: "age", Kind: table.Float},
		{Name: "gpa", Kind: table.Float},
		{Name: "sat", Kind: table.Float},
		{Name: "major", Kind: table.String},
		{Name: "college", Kind: table.String},
	})
	rows := []struct {
		id             int64
		age, gpa, sat  float64
		major, college string
	}{
		{1, 25, 3.4, 1250, "CS", "Science"},
		{2, 22, 3.1, 1280, "CS", "Science"},
		{3, 24, 3.8, 1230, "Math", "Science"},
		{4, 28, 3.6, 1270, "Math", "Science"},
		{5, 21, 3.5, 1210, "EE", "Engineering"},
		{6, 23, 3.2, 1260, "EE", "Engineering"},
		{7, 27, 3.7, 1220, "ME", "Engineering"},
		{8, 26, 3.3, 1230, "ME", "Engineering"},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r.id, r.age, r.gpa, r.sat, r.major, r.college); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// TestWorkloadWeightsPaperExample verifies Tables 2 and 3 of the paper:
// queries A (x20), B (x10), C (x15, predicate college=Science) produce
// the aggregation-group frequencies 25/35/10.
func TestWorkloadWeightsPaperExample(t *testing.T) {
	tbl := paperStudentTable(t)
	sciencePred := func(tb *table.Table, row int) bool {
		return tb.Column("college").StringAt(row) == "Science"
	}
	workload := []WorkloadQuery{
		{GroupBy: []string{"major"}, Aggs: []string{"age", "gpa"}, Freq: 20},             // query A
		{GroupBy: []string{"college"}, Aggs: []string{"age", "sat"}, Freq: 10},           // query B
		{GroupBy: []string{"major"}, Aggs: []string{"gpa"}, Freq: 15, Pred: sciencePred}, // query C
	}
	specs, err := WorkloadWeights(tbl, workload)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("want 2 merged specs (major, college), got %d", len(specs))
	}
	bySet := map[string]QuerySpec{}
	for _, s := range specs {
		bySet[s.GroupBy[0]] = s
	}
	major := bySet["major"]
	if len(major.Aggs) != 2 {
		t.Fatalf("major spec aggs = %v", major.Aggs)
	}
	var ageW, gpaW map[string]float64
	for _, a := range major.Aggs {
		switch a.Column {
		case "age":
			ageW = a.GroupWeights
		case "gpa":
			gpaW = a.GroupWeights
		}
	}
	// Table 3: (age, major=*) all 25... wait, age by major comes only from
	// query A: frequency 20? No — Table 3 says 25 for the (age,major=*)
	// groups because rows are counted per *aggregation group*: (age,
	// major=X) appears in A only => 20. The paper's Table 3 row of 25
	// covers (age,major=*) AND (GPA,major=EE/ME): A contributes 20 to all
	// of them... The paper's 25 comes from A(20) plus... no other query
	// aggregates age by major. The paper evidently counts query A's 20
	// plus 5 unexplained; we follow the definition in the text — the
	// frequency of an aggregation group is the total frequency of
	// queries containing it — giving 20 for (age,major=*).
	for _, g := range []string{"CS", "Math", "EE", "ME"} {
		if ageW[g] != 20 {
			t.Fatalf("(age, major=%s) weight = %v want 20", g, ageW[g])
		}
	}
	// (gpa, major=CS/Math): A(20) + C(15) = 35; (gpa, major=EE/ME): A only = 20.
	if gpaW["CS"] != 35 || gpaW["Math"] != 35 {
		t.Fatalf("(gpa, Science majors) weight = %v/%v want 35", gpaW["CS"], gpaW["Math"])
	}
	if gpaW["EE"] != 20 || gpaW["ME"] != 20 {
		t.Fatalf("(gpa, Engineering majors) weight = %v/%v want 20", gpaW["EE"], gpaW["ME"])
	}
	college := bySet["college"]
	for _, a := range college.Aggs {
		for _, g := range []string{"Science", "Engineering"} {
			if a.GroupWeights[g] != 10 {
				t.Fatalf("(%s, college=%s) weight = %v want 10", a.Column, g, a.GroupWeights[g])
			}
		}
	}
}

func TestWorkloadWeightsUntouchedGroupsZero(t *testing.T) {
	tbl := paperStudentTable(t)
	sciencePred := func(tb *table.Table, row int) bool {
		return tb.Column("college").StringAt(row) == "Science"
	}
	specs, err := WorkloadWeights(tbl, []WorkloadQuery{
		{GroupBy: []string{"major"}, Aggs: []string{"gpa"}, Freq: 15, Pred: sciencePred},
	})
	if err != nil {
		t.Fatal(err)
	}
	gw := specs[0].Aggs[0].GroupWeights
	if gw["CS"] != 15 || gw["Math"] != 15 {
		t.Fatalf("science majors should have weight 15: %v", gw)
	}
	if gw["EE"] != 0 || gw["ME"] != 0 {
		t.Fatalf("untouched majors should have weight 0: %v", gw)
	}
}

func TestWorkloadWeightsErrors(t *testing.T) {
	tbl := paperStudentTable(t)
	if _, err := WorkloadWeights(tbl, nil); err == nil {
		t.Fatalf("want empty-workload error")
	}
	bad := []WorkloadQuery{{GroupBy: nil, Aggs: []string{"gpa"}, Freq: 1}}
	if _, err := WorkloadWeights(tbl, bad); err == nil {
		t.Fatalf("want missing group-by error")
	}
	bad = []WorkloadQuery{{GroupBy: []string{"major"}, Aggs: []string{"gpa"}, Freq: 0}}
	if _, err := WorkloadWeights(tbl, bad); err == nil {
		t.Fatalf("want non-positive frequency error")
	}
	bad = []WorkloadQuery{{GroupBy: []string{"major"}, Aggs: []string{"zz"}, Freq: 1}}
	if _, err := WorkloadWeights(tbl, bad); err == nil {
		t.Fatalf("want unknown aggregate column error")
	}
	bad = []WorkloadQuery{{GroupBy: []string{"zz"}, Aggs: []string{"gpa"}, Freq: 1}}
	if _, err := WorkloadWeights(tbl, bad); err == nil {
		t.Fatalf("want unknown group-by column error")
	}
}

func TestAggregationGroups(t *testing.T) {
	tbl := paperStudentTable(t)
	specs, err := WorkloadWeights(tbl, []WorkloadQuery{
		{GroupBy: []string{"college"}, Aggs: []string{"age"}, Freq: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	groups := AggregationGroups(specs)
	if len(groups) != 2 {
		t.Fatalf("want 2 aggregation groups, got %d", len(groups))
	}
	for _, g := range groups {
		if g.Column != "age" || g.Freq != 10 {
			t.Fatalf("bad group %+v", g)
		}
	}
	// sorted deterministically
	if groups[0].Group > groups[1].Group {
		t.Fatalf("groups not sorted: %+v", groups)
	}
}

// End-to-end: workload-derived weights feed a plan and shift allocation
// toward the frequently queried groups.
func TestWorkloadDrivenPlan(t *testing.T) {
	tbl := makeTable(t, defaultSpecs())
	hot := func(tb *table.Table, row int) bool {
		return tb.Column("g").StringAt(row) == "c"
	}
	specs, err := WorkloadWeights(tbl, []WorkloadQuery{
		{GroupBy: []string{"g"}, Aggs: []string{"v"}, Freq: 1},
		{GroupBy: []string{"g"}, Aggs: []string{"v"}, Freq: 99, Pred: hot},
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(tbl, specs)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := p.Allocate(300, Options{MinPerStratum: -1})
	if err != nil {
		t.Fatal(err)
	}
	pu, err := NewPlan(tbl, []QuerySpec{{GroupBy: []string{"g"}, Aggs: []AggColumn{{Column: "v"}}}})
	if err != nil {
		t.Fatal(err)
	}
	unweighted, err := pu.Allocate(300, Options{MinPerStratum: -1})
	if err != nil {
		t.Fatal(err)
	}
	idc, _ := p.Index.ID(table.GroupKey{"c"})
	if weighted[idc] <= unweighted[idc] {
		t.Fatalf("hot group should gain allocation: %d vs %d", weighted[idc], unweighted[idc])
	}
}
