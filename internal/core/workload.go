package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/table"
)

// WorkloadQuery is one entry of a query workload (Section 4.3): a
// group-by query shape, how many times it occurs in the workload, and an
// optional row predicate restricting which rows (and hence which
// aggregation groups) the query touches — e.g. the example workload's
// query C, "GROUP BY major WHERE college=Science".
type WorkloadQuery struct {
	GroupBy []string
	Aggs    []string // aggregation column names (weights come from Freq)
	Freq    int
	Pred    func(tbl *table.Table, row int) bool // nil means all rows
}

// WorkloadWeights preprocesses a workload into QuerySpecs whose
// per-group weights are the frequencies of the deduced aggregation
// groups, reproducing Table 3 of the paper: an aggregation group is a
// pair (aggregation column, group-by value assignment); its weight is
// the total frequency of workload queries that touch it. Queries sharing
// a group-by attribute set are merged into one QuerySpec.
func WorkloadWeights(tbl *table.Table, workload []WorkloadQuery) ([]QuerySpec, error) {
	if len(workload) == 0 {
		return nil, fmt.Errorf("core: empty workload")
	}
	type gbEntry struct {
		attrs []string
		// weights[column][groupKey] = summed frequency
		weights map[string]map[string]float64
		order   []string // column order of first appearance
	}
	byGB := map[string]*gbEntry{}
	var gbOrder []string

	for wi, wq := range workload {
		if len(wq.GroupBy) == 0 || len(wq.Aggs) == 0 {
			return nil, fmt.Errorf("core: workload query %d missing group-by or aggregates", wi)
		}
		if wq.Freq <= 0 {
			return nil, fmt.Errorf("core: workload query %d has non-positive frequency %d", wi, wq.Freq)
		}
		gi, err := table.BuildGroupIndex(tbl, wq.GroupBy)
		if err != nil {
			return nil, fmt.Errorf("core: workload query %d: %w", wi, err)
		}
		// Which groups does the query touch? Without a predicate: all
		// groups occurring in the data. With one: groups having at least
		// one qualifying row.
		touched := make([]bool, gi.NumStrata())
		if wq.Pred == nil {
			for i := range touched {
				touched[i] = true
			}
		} else {
			for r := 0; r < tbl.NumRows(); r++ {
				if wq.Pred(tbl, r) {
					touched[gi.RowID[r]] = true
				}
			}
		}
		gbKey := strings.Join(wq.GroupBy, "\x00")
		e, ok := byGB[gbKey]
		if !ok {
			e = &gbEntry{attrs: append([]string(nil), wq.GroupBy...), weights: map[string]map[string]float64{}}
			byGB[gbKey] = e
			gbOrder = append(gbOrder, gbKey)
		}
		for _, col := range wq.Aggs {
			if tbl.Column(col) == nil {
				return nil, fmt.Errorf("core: workload query %d aggregates unknown column %q", wi, col)
			}
			m, ok := e.weights[col]
			if !ok {
				m = map[string]float64{}
				e.weights[col] = m
				e.order = append(e.order, col)
			}
			for id := 0; id < gi.NumStrata(); id++ {
				if touched[id] {
					m[gi.Key(id).String()] += float64(wq.Freq)
				}
			}
		}
	}

	var specs []QuerySpec
	for _, gbKey := range gbOrder {
		e := byGB[gbKey]
		spec := QuerySpec{GroupBy: e.attrs}
		for _, col := range e.order {
			// Base weight 0 would mean "default 1" in weightFor; groups a
			// workload never touches should get weight 0, so store every
			// occurring group explicitly and use a tiny base via explicit
			// zero entries being absent. We instead set Weight to the
			// minimum observed so untouched groups (absent from the map)
			// fall back to it only if they exist; to make them truly
			// zero-weight they are added below with weight 0.
			gw := map[string]float64{}
			for k, v := range e.weights[col] {
				gw[k] = v
			}
			spec.Aggs = append(spec.Aggs, AggColumn{Column: col, Weight: 1, GroupWeights: gw})
		}
		specs = append(specs, spec)
	}

	// For deterministic behavior, fill weight 0 for data groups never
	// touched by the workload (e.g. non-Science majors for query C when
	// no other query covers them — they would otherwise default to 1).
	for si := range specs {
		gi, err := table.BuildGroupIndex(tbl, specs[si].GroupBy)
		if err != nil {
			return nil, err
		}
		for ai := range specs[si].Aggs {
			gw := specs[si].Aggs[ai].GroupWeights
			for id := 0; id < gi.NumStrata(); id++ {
				k := gi.Key(id).String()
				if _, ok := gw[k]; !ok {
					gw[k] = 0
				}
			}
		}
	}
	return specs, nil
}

// AggregationGroup is one row of the paper's Table 3: an (aggregation
// column, group assignment) pair with its workload frequency.
type AggregationGroup struct {
	Column string
	Group  string // rendered group key, e.g. "CS" or "CS|2019"
	Freq   float64
}

// AggregationGroups flattens the result of WorkloadWeights into the
// Table 3 representation, sorted by descending frequency then name, for
// display by cmd/cvbench and the workload example.
func AggregationGroups(specs []QuerySpec) []AggregationGroup {
	var out []AggregationGroup
	for _, s := range specs {
		for _, a := range s.Aggs {
			for g, f := range a.GroupWeights {
				out = append(out, AggregationGroup{Column: a.Column, Group: g, Freq: f})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Freq != out[j].Freq {
			return out[i].Freq > out[j].Freq
		}
		if out[i].Column != out[j].Column {
			return out[i].Column < out[j].Column
		}
		return out[i].Group < out[j].Group
	})
	return out
}
