package core

import (
	"runtime"
	"sync"

	"repro/internal/stats"
	"repro/internal/table"
)

// parallelThreshold is the row count above which the statistics pass
// fans out to worker goroutines; below it the goroutine and merge
// overhead exceeds the scan cost.
const parallelThreshold = 100000

// collectStats runs the per-stratum statistics pass. For small tables it
// scans sequentially; for large ones it splits the row range across
// GOMAXPROCS workers, each feeding a private Collector, and merges the
// per-stratum summaries with the exact parallel-variance rule — the
// property internal/stats was designed around, so the result equals the
// sequential scan's bit-for-bit up to float associativity.
func collectStats(tbl *table.Table, gi *table.GroupIndex, aggCols []string) (*stats.Collector, error) {
	cols := make([]*table.Column, len(aggCols))
	for i, name := range aggCols {
		cols[i] = tbl.Column(name)
	}
	n := tbl.NumRows()
	workers := runtime.GOMAXPROCS(0)
	if n < parallelThreshold || workers < 2 {
		return scanRange(gi, cols, 0, n)
	}
	if workers > 8 {
		workers = 8 // merges are cheap but the scan saturates memory bandwidth
	}
	chunk := (n + workers - 1) / workers
	partial := make([]*stats.Collector, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			partial[w], errs[w] = scanRange(gi, cols, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	out := stats.NewCollector(gi.NumStrata(), len(cols))
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return nil, errs[w]
		}
		if partial[w] == nil {
			continue
		}
		for c := 0; c < gi.NumStrata(); c++ {
			if err := out.Group(c).Merge(partial[w].Group(c)); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// scanRange accumulates rows [lo, hi) into a fresh collector.
func scanRange(gi *table.GroupIndex, cols []*table.Column, lo, hi int) (*stats.Collector, error) {
	c := stats.NewCollector(gi.NumStrata(), len(cols))
	vals := make([]float64, len(cols))
	for r := lo; r < hi; r++ {
		for i, col := range cols {
			vals[i] = col.Numeric(r)
		}
		if err := c.Observe(int(gi.RowID[r]), vals); err != nil {
			return nil, err
		}
	}
	return c, nil
}
