package table

import (
	"fmt"
)

// Join materializes the foreign-key equi-join of a fact table with a
// dimension table: every fact row is extended with the dimension row
// whose key equals the fact's foreign key. This is the standard way to
// make a stratified sample join-aware (the paper's §8 lists joins
// *inside* the sampling framework as future work): denormalize first,
// then stratify the joined view on any mix of fact and dimension
// attributes — each fact row still joins to at most one dimension row,
// so Horvitz-Thompson weights carry over unchanged.
//
// The join key columns must have the same Kind (String or Int). The
// dimension key must be unique; duplicate keys are an error. Fact rows
// with no dimension match are dropped (inner join) and their count is
// returned. Dimension columns are prefixed to avoid name collisions; the
// dimension's key column itself is omitted (it duplicates the fact FK).
func Join(fact *Table, factKey string, dim *Table, dimKey, prefix string) (*Table, int, error) {
	fk := fact.Column(factKey)
	if fk == nil {
		return nil, 0, fmt.Errorf("table: fact table %q has no column %q", fact.Name, factKey)
	}
	dk := dim.Column(dimKey)
	if dk == nil {
		return nil, 0, fmt.Errorf("table: dimension table %q has no column %q", dim.Name, dimKey)
	}
	if fk.Spec.Kind != dk.Spec.Kind {
		return nil, 0, fmt.Errorf("table: join key kinds differ: %s vs %s", fk.Spec.Kind, dk.Spec.Kind)
	}
	if fk.Spec.Kind == Float {
		return nil, 0, fmt.Errorf("table: cannot join on float column %q", factKey)
	}

	// dimension lookup: rendered key -> dim row
	lookup := make(map[string]int, dim.NumRows())
	for r := 0; r < dim.NumRows(); r++ {
		k := dk.StringAt(r)
		if _, dup := lookup[k]; dup {
			return nil, 0, fmt.Errorf("table: dimension key %q is not unique in %s.%s", k, dim.Name, dimKey)
		}
		lookup[k] = r
	}

	// output schema: fact columns + prefixed dimension columns (minus key)
	schema := fact.Schema()
	var dimCols []*Column
	for _, c := range dim.Columns {
		if c.Spec.Name == dimKey {
			continue
		}
		name := prefix + c.Spec.Name
		if fact.Column(name) != nil {
			return nil, 0, fmt.Errorf("table: joined column %q collides with a fact column (choose a prefix)", name)
		}
		schema = append(schema, ColumnSpec{Name: name, Kind: c.Spec.Kind})
		dimCols = append(dimCols, c)
	}
	out := New(fact.Name+"_"+dim.Name, schema)
	out.Grow(fact.NumRows())

	dropped := 0
	vals := make([]any, len(schema))
	for r := 0; r < fact.NumRows(); r++ {
		dr, ok := lookup[fk.StringAt(r)]
		if !ok {
			dropped++
			continue
		}
		for i, c := range fact.Columns {
			switch c.Spec.Kind {
			case String:
				vals[i] = c.Dict.Value(c.Str[r])
			case Float:
				vals[i] = c.Float[r]
			case Int:
				vals[i] = c.Int[r]
			}
		}
		for j, c := range dimCols {
			switch c.Spec.Kind {
			case String:
				vals[len(fact.Columns)+j] = c.Dict.Value(c.Str[dr])
			case Float:
				vals[len(fact.Columns)+j] = c.Float[dr]
			case Int:
				vals[len(fact.Columns)+j] = c.Int[dr]
			}
		}
		if err := out.AppendRow(vals...); err != nil {
			return nil, 0, err
		}
	}
	return out, dropped, nil
}
