package table

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteCSV writes the table with a header row to w.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		header[i] = c.Spec.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for r := 0; r < t.rows; r++ {
		if err := cw.Write(t.Row(r)); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the table to a file.
func (t *Table) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadCSV parses a CSV with header into a table using the given schema.
// The header must contain every schema column (extra CSV columns are
// ignored); column order in the file may differ from the schema.
func ReadCSV(name string, schema Schema, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: reading CSV header: %w", err)
	}
	pos := make([]int, len(schema))
	for i, spec := range schema {
		pos[i] = -1
		for j, h := range header {
			if h == spec.Name {
				pos[i] = j
				break
			}
		}
		if pos[i] < 0 {
			return nil, fmt.Errorf("table: CSV missing column %q", spec.Name)
		}
	}
	t := New(name, schema)
	line := 1
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: reading CSV line %d: %w", line+1, err)
		}
		line++
		for i, spec := range schema {
			raw := rec[pos[i]]
			col := t.Columns[i]
			switch spec.Kind {
			case String:
				col.Str = append(col.Str, col.Dict.Code(raw))
			case Float:
				v, err := strconv.ParseFloat(raw, 64)
				if err != nil {
					return nil, fmt.Errorf("table: line %d column %s: %w", line, spec.Name, err)
				}
				col.Float = append(col.Float, v)
			case Int:
				v, err := strconv.ParseInt(raw, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("table: line %d column %s: %w", line, spec.Name, err)
				}
				col.Int = append(col.Int, v)
			}
		}
		t.rows++
	}
	return t, nil
}

// LoadCSV reads a CSV file into a table.
func LoadCSV(name string, schema Schema, path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(name, schema, f)
}

// LoadCSVInferred loads a CSV with a schema inferred from its header
// and first data row — the open/infer/load sequence every cmd tool
// needs.
func LoadCSVInferred(name, path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	schema, err := InferSchema(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return LoadCSV(name, schema, path)
}

// InferSchema reads the header and first data row of a CSV to guess a
// schema: values parsing as int64 become Int, as float64 become Float,
// anything else String. Used by cmd/cvsample when no schema is supplied.
func InferSchema(r io.Reader) (Schema, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: reading CSV header: %w", err)
	}
	first, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: CSV has no data rows: %w", err)
	}
	schema := make(Schema, len(header))
	for i, h := range header {
		kind := String
		if _, err := strconv.ParseInt(first[i], 10, 64); err == nil {
			kind = Int
		} else if _, err := strconv.ParseFloat(first[i], 64); err == nil {
			kind = Float
		}
		schema[i] = ColumnSpec{Name: h, Kind: kind}
	}
	return schema, nil
}
