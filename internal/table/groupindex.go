package table

import (
	"fmt"
	"strings"
)

// GroupIndex assigns every row of a table to a stratum defined by the
// combination of values of a set of attributes (the paper's "finest
// stratification" over C = ∪ A_k). Stratum ids are dense integers in
// [0, NumStrata); only combinations that actually occur in the data get
// an id, as required by Sections 3–4.
type GroupIndex struct {
	Attrs   []string // stratification attribute names, in key order
	RowID   []int32  // stratum id per row
	keys    []GroupKey
	keyToID map[string]int32
	cols    []int // column positions of Attrs in the source table
}

// GroupKey is the tuple of attribute values identifying one stratum,
// rendered as strings in Attrs order.
type GroupKey []string

// String renders the key as a pipe-joined tuple.
func (k GroupKey) String() string { return strings.Join(k, "|") }

// BuildGroupIndex scans tbl once and assigns each row a stratum id based
// on the given attribute names. String attributes compare by value; Int
// attributes by their decimal rendering; Float attributes are rejected
// because grouping on continuous attributes is ill-defined.
func BuildGroupIndex(tbl *Table, attrs []string) (*GroupIndex, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("table: group index needs at least one attribute")
	}
	gi := &GroupIndex{
		Attrs:   append([]string(nil), attrs...),
		RowID:   make([]int32, tbl.NumRows()),
		keyToID: make(map[string]int32),
	}
	cols := make([]*Column, len(attrs))
	for i, a := range attrs {
		c := tbl.Column(a)
		if c == nil {
			return nil, fmt.Errorf("table: unknown group-by attribute %q", a)
		}
		if c.Spec.Kind == Float {
			return nil, fmt.Errorf("table: cannot group by float column %q", a)
		}
		cols[i] = c
		gi.cols = append(gi.cols, tbl.ColumnIndex(a))
	}
	var sb strings.Builder
	parts := make([]string, len(attrs))
	for r := 0; r < tbl.NumRows(); r++ {
		sb.Reset()
		for i, c := range cols {
			if i > 0 {
				sb.WriteByte(0)
			}
			switch c.Spec.Kind {
			case String:
				parts[i] = c.Dict.Value(c.Str[r])
			case Int:
				parts[i] = fmt.Sprintf("%d", c.Int[r])
			}
			sb.WriteString(parts[i])
		}
		key := sb.String()
		id, ok := gi.keyToID[key]
		if !ok {
			id = int32(len(gi.keys))
			gi.keyToID[key] = id
			gi.keys = append(gi.keys, append(GroupKey(nil), parts...))
		}
		gi.RowID[r] = id
	}
	return gi, nil
}

// NumStrata returns the number of distinct strata observed.
func (g *GroupIndex) NumStrata() int { return len(g.keys) }

// Key returns the value tuple of stratum id.
func (g *GroupIndex) Key(id int) GroupKey { return g.keys[id] }

// ID returns the stratum id for a key tuple (values in Attrs order) and
// whether the combination occurs in the data.
func (g *GroupIndex) ID(key GroupKey) (int, bool) {
	id, ok := g.keyToID[strings.Join(key, "\x00")]
	return int(id), ok
}

// Project maps each stratum of g onto the coarser grouping given by a
// subset of g.Attrs (the paper's Π(c, A)). It returns, per stratum id,
// the id of its coarse group, plus the list of coarse group keys. Every
// attribute in attrs must be one of g.Attrs.
func (g *GroupIndex) Project(attrs []string) (fineToCoarse []int, coarseKeys []GroupKey, err error) {
	pos := make([]int, len(attrs))
	for i, a := range attrs {
		p := -1
		for j, ga := range g.Attrs {
			if ga == a {
				p = j
				break
			}
		}
		if p < 0 {
			return nil, nil, fmt.Errorf("table: projection attribute %q not in stratification %v", a, g.Attrs)
		}
		pos[i] = p
	}
	fineToCoarse = make([]int, len(g.keys))
	coarseIdx := make(map[string]int)
	for id, key := range g.keys {
		parts := make([]string, len(attrs))
		for i, p := range pos {
			parts[i] = key[p]
		}
		ck := strings.Join(parts, "\x00")
		cid, ok := coarseIdx[ck]
		if !ok {
			cid = len(coarseKeys)
			coarseIdx[ck] = cid
			coarseKeys = append(coarseKeys, GroupKey(parts))
		}
		fineToCoarse[id] = cid
	}
	return fineToCoarse, coarseKeys, nil
}

// StratumSizes returns the number of rows per stratum.
func (g *GroupIndex) StratumSizes() []int64 {
	n := make([]int64, len(g.keys))
	for _, id := range g.RowID {
		n[id]++
	}
	return n
}

// RowsByStratum returns, for each stratum, the slice of row indices that
// belong to it. The inner slices are views into one backing array.
func (g *GroupIndex) RowsByStratum() [][]int32 {
	sizes := g.StratumSizes()
	offsets := make([]int, len(sizes)+1)
	for i, s := range sizes {
		offsets[i+1] = offsets[i] + int(s)
	}
	backing := make([]int32, len(g.RowID))
	cursor := make([]int, len(sizes))
	copy(cursor, offsets[:len(sizes)])
	for r, id := range g.RowID {
		backing[cursor[id]] = int32(r)
		cursor[id]++
	}
	out := make([][]int32, len(sizes))
	for i := range sizes {
		out[i] = backing[offsets[i]:offsets[i+1]]
	}
	return out
}
