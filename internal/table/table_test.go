package table

import (
	"bytes"
	"strings"
	"testing"
)

func studentSchema() Schema {
	return Schema{
		{Name: "major", Kind: String},
		{Name: "year", Kind: Int},
		{Name: "gpa", Kind: Float},
	}
}

func studentTable(t *testing.T) *Table {
	t.Helper()
	tbl := New("student", studentSchema())
	rows := []struct {
		major string
		year  int64
		gpa   float64
	}{
		{"CS", 2019, 3.4},
		{"CS", 2020, 3.1},
		{"Math", 2019, 3.8},
		{"Math", 2020, 3.6},
		{"EE", 2019, 3.5},
		{"EE", 2019, 3.2},
		{"ME", 2020, 3.7},
		{"ME", 2020, 3.3},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r.major, r.year, r.gpa); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestAppendAndAccess(t *testing.T) {
	tbl := studentTable(t)
	if tbl.NumRows() != 8 || tbl.NumCols() != 3 {
		t.Fatalf("shape: %d x %d", tbl.NumRows(), tbl.NumCols())
	}
	if tbl.Column("major").StringAt(2) != "Math" {
		t.Fatalf("row 2 major = %q", tbl.Column("major").StringAt(2))
	}
	if tbl.Column("gpa").Numeric(0) != 3.4 {
		t.Fatalf("gpa[0] = %v", tbl.Column("gpa").Numeric(0))
	}
	if tbl.Column("year").Numeric(1) != 2020 {
		t.Fatalf("year[1] = %v", tbl.Column("year").Numeric(1))
	}
	if tbl.Column("nope") != nil {
		t.Fatalf("unknown column should be nil")
	}
	if got := tbl.ColumnIndex("gpa"); got != 2 {
		t.Fatalf("ColumnIndex(gpa) = %d", got)
	}
	if got := tbl.ColumnIndex("nope"); got != -1 {
		t.Fatalf("ColumnIndex(nope) = %d", got)
	}
}

func TestAppendRowErrors(t *testing.T) {
	tbl := New("t", studentSchema())
	if err := tbl.AppendRow("CS", int64(2019)); err == nil {
		t.Fatalf("want arity error")
	}
	if err := tbl.AppendRow(5, int64(2019), 3.0); err == nil {
		t.Fatalf("want type error for string column")
	}
	if err := tbl.AppendRow("CS", "x", 3.0); err == nil {
		t.Fatalf("want type error for int column")
	}
	if err := tbl.AppendRow("CS", int64(2019), "x"); err == nil {
		t.Fatalf("want type error for float column")
	}
	if tbl.NumRows() != 0 {
		t.Fatalf("failed appends must not count rows")
	}
	// int and int64 both accepted for Int; int accepted for Float.
	if err := tbl.AppendRow("CS", 2019, 3); err != nil {
		t.Fatal(err)
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.Code("x")
	b := d.Code("y")
	if a == b {
		t.Fatalf("distinct values share code")
	}
	if d.Code("x") != a {
		t.Fatalf("re-interning changed code")
	}
	if d.Len() != 2 {
		t.Fatalf("dict len = %d", d.Len())
	}
	if d.Value(a) != "x" {
		t.Fatalf("Value(a) = %q", d.Value(a))
	}
	if c, ok := d.Lookup("y"); !ok || c != b {
		t.Fatalf("Lookup(y) = %v,%v", c, ok)
	}
	if _, ok := d.Lookup("z"); ok {
		t.Fatalf("Lookup(z) should miss")
	}
}

func TestSelect(t *testing.T) {
	tbl := studentTable(t)
	sub := tbl.Select([]int{1, 3, 5})
	if sub.NumRows() != 3 {
		t.Fatalf("rows = %d", sub.NumRows())
	}
	wantMajors := []string{"CS", "Math", "EE"}
	for i, w := range wantMajors {
		if got := sub.Column("major").StringAt(i); got != w {
			t.Fatalf("row %d major = %q want %q", i, got, w)
		}
	}
	// Selecting must be independent: mutating sub must not affect tbl.
	if err := sub.AppendRow("Bio", int64(2021), 2.9); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 8 {
		t.Fatalf("source table mutated")
	}
}

func TestAppendTable(t *testing.T) {
	a := studentTable(t)
	b := studentTable(t)
	if err := a.AppendTable(b); err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != 16 {
		t.Fatalf("rows = %d", a.NumRows())
	}
	if a.Column("major").StringAt(8) != "CS" {
		t.Fatalf("appended row wrong")
	}
	bad := New("bad", Schema{{Name: "x", Kind: Int}})
	if err := a.AppendTable(bad); err == nil {
		t.Fatalf("want schema mismatch error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := studentTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("student", studentSchema(), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tbl.NumRows() {
		t.Fatalf("rows = %d want %d", back.NumRows(), tbl.NumRows())
	}
	for r := 0; r < tbl.NumRows(); r++ {
		a, b := tbl.Row(r), back.Row(r)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("row %d col %d: %q vs %q", r, i, a[i], b[i])
			}
		}
	}
}

func TestReadCSVColumnOrderAndErrors(t *testing.T) {
	// header order differs from schema; extra column ignored
	src := "gpa,extra,major,year\n3.5,zz,CS,2019\n"
	tbl, err := ReadCSV("t", studentSchema(), strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Column("major").StringAt(0) != "CS" || tbl.Column("gpa").Numeric(0) != 3.5 {
		t.Fatalf("reordered CSV misparsed: %v", tbl.Row(0))
	}

	if _, err := ReadCSV("t", studentSchema(), strings.NewReader("major,year\nCS,2019\n")); err == nil {
		t.Fatalf("want missing-column error")
	}
	if _, err := ReadCSV("t", studentSchema(), strings.NewReader("major,year,gpa\nCS,xx,3.5\n")); err == nil {
		t.Fatalf("want int parse error")
	}
	if _, err := ReadCSV("t", studentSchema(), strings.NewReader("major,year,gpa\nCS,2019,zz\n")); err == nil {
		t.Fatalf("want float parse error")
	}
}

func TestInferSchema(t *testing.T) {
	src := "a,b,c\nhello,3,4.5\n"
	s, err := InferSchema(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{String, Int, Float}
	for i, k := range want {
		if s[i].Kind != k {
			t.Fatalf("col %d kind = %v want %v", i, s[i].Kind, k)
		}
	}
	if _, err := InferSchema(strings.NewReader("a,b\n")); err == nil {
		t.Fatalf("want error for header-only CSV")
	}
}

func TestKindString(t *testing.T) {
	if String.String() != "string" || Float.String() != "float" || Int.String() != "int" {
		t.Fatalf("Kind.String wrong")
	}
	if Kind(9).String() == "" {
		t.Fatalf("unknown kind should still render")
	}
}

func TestSchemaIndex(t *testing.T) {
	s := studentSchema()
	if s.Index("year") != 1 || s.Index("zzz") != -1 {
		t.Fatalf("Schema.Index wrong")
	}
}

func TestGroupIndexSingleAttr(t *testing.T) {
	tbl := studentTable(t)
	gi, err := BuildGroupIndex(tbl, []string{"major"})
	if err != nil {
		t.Fatal(err)
	}
	if gi.NumStrata() != 4 {
		t.Fatalf("strata = %d want 4", gi.NumStrata())
	}
	sizes := gi.StratumSizes()
	for _, s := range sizes {
		if s != 2 {
			t.Fatalf("each major has 2 rows, got %v", sizes)
		}
	}
	// row 0 and row 1 are both CS
	if gi.RowID[0] != gi.RowID[1] {
		t.Fatalf("CS rows split across strata")
	}
	if id, ok := gi.ID(GroupKey{"Math"}); !ok || gi.Key(id).String() != "Math" {
		t.Fatalf("ID lookup failed")
	}
	if _, ok := gi.ID(GroupKey{"Bio"}); ok {
		t.Fatalf("nonexistent key should miss")
	}
}

func TestGroupIndexMultiAttr(t *testing.T) {
	tbl := studentTable(t)
	gi, err := BuildGroupIndex(tbl, []string{"major", "year"})
	if err != nil {
		t.Fatal(err)
	}
	// distinct (major,year) pairs: CS/2019, CS/2020, Math/2019, Math/2020,
	// EE/2019, ME/2020 = 6 (only combinations occurring in data).
	if gi.NumStrata() != 6 {
		t.Fatalf("strata = %d want 6", gi.NumStrata())
	}
	if id, ok := gi.ID(GroupKey{"EE", "2019"}); !ok {
		t.Fatalf("EE/2019 missing")
	} else if gi.StratumSizes()[id] != 2 {
		t.Fatalf("EE/2019 size wrong")
	}
}

func TestGroupIndexErrors(t *testing.T) {
	tbl := studentTable(t)
	if _, err := BuildGroupIndex(tbl, nil); err == nil {
		t.Fatalf("want error for no attributes")
	}
	if _, err := BuildGroupIndex(tbl, []string{"nope"}); err == nil {
		t.Fatalf("want error for unknown attribute")
	}
	if _, err := BuildGroupIndex(tbl, []string{"gpa"}); err == nil {
		t.Fatalf("want error for float attribute")
	}
}

func TestGroupIndexProject(t *testing.T) {
	tbl := studentTable(t)
	gi, err := BuildGroupIndex(tbl, []string{"major", "year"})
	if err != nil {
		t.Fatal(err)
	}
	fineToCoarse, coarse, err := gi.Project([]string{"major"})
	if err != nil {
		t.Fatal(err)
	}
	if len(coarse) != 4 {
		t.Fatalf("coarse groups = %d want 4", len(coarse))
	}
	// CS/2019 and CS/2020 must map to the same coarse group.
	a, _ := gi.ID(GroupKey{"CS", "2019"})
	b, _ := gi.ID(GroupKey{"CS", "2020"})
	if fineToCoarse[a] != fineToCoarse[b] {
		t.Fatalf("CS strata project to different groups")
	}
	c, _ := gi.ID(GroupKey{"Math", "2019"})
	if fineToCoarse[a] == fineToCoarse[c] {
		t.Fatalf("CS and Math collapse together")
	}
	if _, _, err := gi.Project([]string{"zipcode"}); err == nil {
		t.Fatalf("want error projecting unknown attribute")
	}
	// projecting onto the full set is identity-like
	f2c, ck, err := gi.Project([]string{"major", "year"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ck) != gi.NumStrata() {
		t.Fatalf("full projection should preserve strata count")
	}
	for i, c := range f2c {
		if i != c {
			t.Fatalf("full projection should be identity (first-seen order)")
		}
	}
}

func TestRowsByStratum(t *testing.T) {
	tbl := studentTable(t)
	gi, err := BuildGroupIndex(tbl, []string{"major"})
	if err != nil {
		t.Fatal(err)
	}
	rows := gi.RowsByStratum()
	total := 0
	for id, rs := range rows {
		total += len(rs)
		for _, r := range rs {
			if int(gi.RowID[r]) != id {
				t.Fatalf("row %d assigned to wrong stratum", r)
			}
		}
	}
	if total != tbl.NumRows() {
		t.Fatalf("RowsByStratum covers %d rows, want %d", total, tbl.NumRows())
	}
}

func TestGrow(t *testing.T) {
	tbl := New("t", studentSchema())
	tbl.Grow(100)
	if err := tbl.AppendRow("CS", int64(2019), 3.0); err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 1 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
}

func TestSnapshotIsolatedFromLaterAppends(t *testing.T) {
	tbl := studentTable(t)
	snap := tbl.Snapshot()
	if snap.NumRows() != 8 || snap.NumCols() != 3 {
		t.Fatalf("snapshot shape: %d x %d", snap.NumRows(), snap.NumCols())
	}
	// keep appending to the original, including a brand-new dictionary
	// value; the snapshot must not move
	for i := 0; i < 200; i++ {
		if err := tbl.AppendRow("Bio", int64(2021), 2.9); err != nil {
			t.Fatal(err)
		}
	}
	if snap.NumRows() != 8 {
		t.Fatalf("snapshot grew to %d rows after appends", snap.NumRows())
	}
	if got := snap.Column("major").StringAt(2); got != "Math" {
		t.Fatalf("snapshot row 2 major = %q", got)
	}
	if _, ok := snap.Column("major").Dict.Lookup("Bio"); ok {
		t.Fatal("snapshot dictionary saw a value interned after the cut")
	}
	if _, ok := tbl.Column("major").Dict.Lookup("Bio"); !ok {
		t.Fatal("original dictionary lost the new value")
	}
	// concurrent reads of the snapshot while the writer appends: the
	// race detector is the assertion here
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			_ = tbl.AppendRow("Chem", int64(2022), 3.0+float64(i%10)/10)
		}
	}()
	sum := 0.0
	for i := 0; i < snap.NumRows(); i++ {
		sum += snap.Column("gpa").Numeric(i)
		_ = snap.Column("major").StringAt(i)
	}
	<-done
	if sum == 0 {
		t.Fatal("snapshot reads returned nothing")
	}
}

func BenchmarkBuildGroupIndex(b *testing.B) {
	tbl := New("b", Schema{{Name: "g", Kind: String}, {Name: "v", Kind: Float}})
	for i := 0; i < 100000; i++ {
		if err := tbl.AppendRow(string(rune('A'+i%50)), float64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildGroupIndex(tbl, []string{"g"}); err != nil {
			b.Fatal(err)
		}
	}
}
