// Package table implements the in-memory columnar relation that stands in
// for the paper's Hive warehouse tables.
//
// A Table holds a fixed schema of typed columns. String columns are
// dictionary-encoded (each distinct value stored once, rows store int32
// codes), which makes group-by key construction and stratification cheap.
// Numeric columns are dense []float64 / []int64. Tables load from and
// save to CSV so the cmd tools can operate on external data.
package table

import (
	"fmt"
	"math"
	"strconv"
)

// Kind is the type of a column.
type Kind uint8

// Column kinds.
const (
	String Kind = iota // dictionary-encoded string
	Float              // float64
	Int                // int64
)

func (k Kind) String() string {
	switch k {
	case String:
		return "string"
	case Float:
		return "float"
	case Int:
		return "int"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ColumnSpec describes one column of a schema.
type ColumnSpec struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of column specs.
type Schema []ColumnSpec

// Index returns the position of the named column, or -1.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Dict is a string dictionary: distinct values with a reverse index.
type Dict struct {
	values []string
	index  map[string]int32
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{index: make(map[string]int32)}
}

// Code interns v and returns its code.
func (d *Dict) Code(v string) int32 {
	if c, ok := d.index[v]; ok {
		return c
	}
	c := int32(len(d.values))
	d.values = append(d.values, v)
	d.index[v] = c
	return c
}

// Lookup returns the code of v and whether it is present.
func (d *Dict) Lookup(v string) (int32, bool) {
	c, ok := d.index[v]
	return c, ok
}

// Value returns the string for code c.
func (d *Dict) Value(c int32) string { return d.values[c] }

// snapshot returns an independent read-only view of the dictionary's
// current state. The values slice header is copied with its capacity
// clamped to its length and the index map is cloned, so the writer may
// keep interning new values into the original without the snapshot ever
// observing a concurrent mutation.
func (d *Dict) snapshot() *Dict {
	idx := make(map[string]int32, len(d.index))
	for v, c := range d.index {
		idx[v] = c
	}
	return &Dict{values: d.values[:len(d.values):len(d.values)], index: idx}
}

// Len returns the number of distinct values.
func (d *Dict) Len() int { return len(d.values) }

// Column is one typed column of a table. Exactly one of the data slices
// is populated according to Kind.
type Column struct {
	Spec  ColumnSpec
	Str   []int32 // codes into Dict, when Kind == String
	Dict  *Dict
	Float []float64 // when Kind == Float
	Int   []int64   // when Kind == Int
}

// Len returns the number of rows stored in the column.
func (c *Column) Len() int {
	switch c.Spec.Kind {
	case String:
		return len(c.Str)
	case Float:
		return len(c.Float)
	case Int:
		return len(c.Int)
	}
	return 0
}

// Numeric returns row r as a float64. String columns return their
// dictionary code (useful only for diagnostics); numeric columns return
// their value.
func (c *Column) Numeric(r int) float64 {
	switch c.Spec.Kind {
	case Float:
		return c.Float[r]
	case Int:
		return float64(c.Int[r])
	case String:
		return float64(c.Str[r])
	}
	return math.NaN()
}

// StringAt returns row r rendered as a string.
func (c *Column) StringAt(r int) string {
	switch c.Spec.Kind {
	case String:
		return c.Dict.Value(c.Str[r])
	case Float:
		return strconv.FormatFloat(c.Float[r], 'g', -1, 64)
	case Int:
		return strconv.FormatInt(c.Int[r], 10)
	}
	return ""
}

// Table is a columnar relation.
type Table struct {
	Name    string
	Columns []*Column
	rows    int
}

// New creates an empty table with the given schema.
func New(name string, schema Schema) *Table {
	t := &Table{Name: name}
	for _, spec := range schema {
		col := &Column{Spec: spec}
		if spec.Kind == String {
			col.Dict = NewDict()
		}
		t.Columns = append(t.Columns, col)
	}
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema {
	s := make(Schema, len(t.Columns))
	for i, c := range t.Columns {
		s[i] = c.Spec
	}
	return s
}

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return t.rows }

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.Columns) }

// Column returns the named column or nil.
func (t *Table) Column(name string) *Column {
	for _, c := range t.Columns {
		if c.Spec.Name == name {
			return c
		}
	}
	return nil
}

// ColumnIndex returns the position of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Spec.Name == name {
			return i
		}
	}
	return -1
}

// AppendRow appends one row given as Go values. Strings go to String
// columns, float64 to Float, int64/int to Int. It returns an error on
// arity or type mismatch.
func (t *Table) AppendRow(vals ...any) error {
	if len(vals) != len(t.Columns) {
		return fmt.Errorf("table %s: AppendRow arity %d, want %d", t.Name, len(vals), len(t.Columns))
	}
	for i, v := range vals {
		col := t.Columns[i]
		switch col.Spec.Kind {
		case String:
			s, ok := v.(string)
			if !ok {
				return fmt.Errorf("table %s: column %s expects string, got %T", t.Name, col.Spec.Name, v)
			}
			col.Str = append(col.Str, col.Dict.Code(s))
		case Float:
			switch x := v.(type) {
			case float64:
				col.Float = append(col.Float, x)
			case int:
				col.Float = append(col.Float, float64(x))
			case int64:
				col.Float = append(col.Float, float64(x))
			default:
				return fmt.Errorf("table %s: column %s expects float, got %T", t.Name, col.Spec.Name, v)
			}
		case Int:
			switch x := v.(type) {
			case int64:
				col.Int = append(col.Int, x)
			case int:
				col.Int = append(col.Int, int64(x))
			default:
				return fmt.Errorf("table %s: column %s expects int, got %T", t.Name, col.Spec.Name, v)
			}
		}
	}
	t.rows++
	return nil
}

// Grow pre-allocates capacity for n additional rows.
func (t *Table) Grow(n int) {
	for _, c := range t.Columns {
		switch c.Spec.Kind {
		case String:
			if cap(c.Str)-len(c.Str) < n {
				s := make([]int32, len(c.Str), len(c.Str)+n)
				copy(s, c.Str)
				c.Str = s
			}
		case Float:
			if cap(c.Float)-len(c.Float) < n {
				s := make([]float64, len(c.Float), len(c.Float)+n)
				copy(s, c.Float)
				c.Float = s
			}
		case Int:
			if cap(c.Int)-len(c.Int) < n {
				s := make([]int64, len(c.Int), len(c.Int)+n)
				copy(s, c.Int)
				c.Int = s
			}
		}
	}
}

// Select returns a new table with the subset of rows whose indices are in
// rows, preserving order. Dictionaries are shared structurally by
// re-interning, so the result is independent of the source.
func (t *Table) Select(rows []int) *Table {
	out := New(t.Name, t.Schema())
	out.Grow(len(rows))
	for _, r := range rows {
		for i, c := range t.Columns {
			oc := out.Columns[i]
			switch c.Spec.Kind {
			case String:
				oc.Str = append(oc.Str, oc.Dict.Code(c.Dict.Value(c.Str[r])))
			case Float:
				oc.Float = append(oc.Float, c.Float[r])
			case Int:
				oc.Int = append(oc.Int, c.Int[r])
			}
		}
		out.rows++
	}
	return out
}

// Snapshot returns an immutable view of the table's current rows that
// stays valid while a single writer keeps appending to the receiver.
// Column slice headers are copied with capacity clamped to the current
// length and dictionaries are cloned (values prefix shared, index map
// copied), so the snapshot and the growing original never touch the
// same memory location: the writer only ever writes elements at indices
// the snapshot cannot reach. Taking a snapshot is O(columns + distinct
// string values), independent of the row count.
//
// The caller must ensure no append is in flight during the call itself
// (the streaming ingest layer serializes Snapshot against its writer);
// after it returns, reads of the snapshot need no synchronization.
func (t *Table) Snapshot() *Table {
	out := &Table{Name: t.Name, rows: t.rows, Columns: make([]*Column, len(t.Columns))}
	for i, c := range t.Columns {
		nc := &Column{Spec: c.Spec}
		switch c.Spec.Kind {
		case String:
			nc.Str = c.Str[:len(c.Str):len(c.Str)]
			nc.Dict = c.Dict.snapshot()
		case Float:
			nc.Float = c.Float[:len(c.Float):len(c.Float)]
		case Int:
			nc.Int = c.Int[:len(c.Int):len(c.Int)]
		}
		out.Columns[i] = nc
	}
	return out
}

// AppendTable appends all rows of src (same schema order/kinds assumed)
// to t. Used by the -scale duplication in the Table 6 experiment.
func (t *Table) AppendTable(src *Table) error {
	if len(src.Columns) != len(t.Columns) {
		return fmt.Errorf("table: AppendTable schema arity mismatch")
	}
	for i := range t.Columns {
		if t.Columns[i].Spec.Kind != src.Columns[i].Spec.Kind {
			return fmt.Errorf("table: AppendTable kind mismatch at column %d", i)
		}
	}
	t.Grow(src.rows)
	for i, c := range t.Columns {
		sc := src.Columns[i]
		switch c.Spec.Kind {
		case String:
			for _, code := range sc.Str {
				c.Str = append(c.Str, c.Dict.Code(sc.Dict.Value(code)))
			}
		case Float:
			c.Float = append(c.Float, sc.Float...)
		case Int:
			c.Int = append(c.Int, sc.Int...)
		}
	}
	t.rows += src.rows
	return nil
}

// Row materializes row r as a []string (for printing and CSV export).
func (t *Table) Row(r int) []string {
	out := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		out[i] = c.StringAt(r)
	}
	return out
}
