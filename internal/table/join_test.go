package table

import (
	"testing"
)

func factTable(t *testing.T) *Table {
	tbl := New("orders", Schema{
		{Name: "station", Kind: Int},
		{Name: "amount", Kind: Float},
	})
	rows := []struct {
		station int64
		amount  float64
	}{
		{1, 10}, {1, 20}, {2, 30}, {3, 40}, {9, 99}, // station 9 has no dimension row
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r.station, r.amount); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func dimTable(t *testing.T) *Table {
	tbl := New("stations", Schema{
		{Name: "id", Kind: Int},
		{Name: "city", Kind: String},
		{Name: "capacity", Kind: Int},
	})
	rows := []struct {
		id       int64
		city     string
		capacity int64
	}{
		{1, "Chicago", 20}, {2, "Evanston", 10}, {3, "Chicago", 30},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r.id, r.city, r.capacity); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestJoinBasic(t *testing.T) {
	fact, dim := factTable(t), dimTable(t)
	joined, dropped, err := Join(fact, "station", dim, "id", "station_")
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d want 1 (station 9)", dropped)
	}
	if joined.NumRows() != 4 {
		t.Fatalf("rows = %d want 4", joined.NumRows())
	}
	// schema: station, amount, station_city, station_capacity
	if joined.ColumnIndex("station_city") < 0 || joined.ColumnIndex("station_capacity") < 0 {
		t.Fatalf("dimension columns missing: %v", joined.Schema())
	}
	if joined.ColumnIndex("station_id") >= 0 {
		t.Fatalf("dimension key should be omitted")
	}
	// row 0: station 1 -> Chicago/20
	if joined.Column("station_city").StringAt(0) != "Chicago" {
		t.Fatalf("row 0 city = %q", joined.Column("station_city").StringAt(0))
	}
	if joined.Column("station_capacity").Int[0] != 20 {
		t.Fatalf("row 0 capacity wrong")
	}
	// row 2: station 2 -> Evanston
	if joined.Column("station_city").StringAt(2) != "Evanston" {
		t.Fatalf("row 2 city = %q", joined.Column("station_city").StringAt(2))
	}
	// fact columns preserved
	if joined.Column("amount").Float[3] != 40 {
		t.Fatalf("fact column lost")
	}
}

func TestJoinGroupByDimensionAttribute(t *testing.T) {
	fact, dim := factTable(t), dimTable(t)
	joined, _, err := Join(fact, "station", dim, "id", "station_")
	if err != nil {
		t.Fatal(err)
	}
	gi, err := BuildGroupIndex(joined, []string{"station_city"})
	if err != nil {
		t.Fatal(err)
	}
	if gi.NumStrata() != 2 {
		t.Fatalf("cities = %d want 2", gi.NumStrata())
	}
	id, ok := gi.ID(GroupKey{"Chicago"})
	if !ok {
		t.Fatalf("Chicago stratum missing")
	}
	if gi.StratumSizes()[id] != 3 { // stations 1 (2 rows) + 3 (1 row)
		t.Fatalf("Chicago rows = %d want 3", gi.StratumSizes()[id])
	}
}

func TestJoinErrors(t *testing.T) {
	fact, dim := factTable(t), dimTable(t)
	if _, _, err := Join(fact, "zz", dim, "id", "p_"); err == nil {
		t.Fatalf("want unknown fact key error")
	}
	if _, _, err := Join(fact, "station", dim, "zz", "p_"); err == nil {
		t.Fatalf("want unknown dim key error")
	}
	if _, _, err := Join(fact, "amount", dim, "id", "p_"); err == nil {
		t.Fatalf("want float key error")
	}
	if _, _, err := Join(fact, "station", dim, "city", "p_"); err == nil {
		t.Fatalf("want kind mismatch error")
	}
	// duplicate dimension keys
	dupDim := New("d", Schema{{Name: "id", Kind: Int}, {Name: "x", Kind: Int}})
	for _, id := range []int64{1, 1} {
		if err := dupDim.AppendRow(id, int64(0)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := Join(fact, "station", dupDim, "id", "p_"); err == nil {
		t.Fatalf("want duplicate key error")
	}
	// column collision without prefix
	collide := New("d", Schema{{Name: "id", Kind: Int}, {Name: "amount", Kind: Float}})
	if err := collide.AppendRow(int64(1), 1.0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Join(fact, "station", collide, "id", ""); err == nil {
		t.Fatalf("want collision error")
	}
}

func TestJoinStringKey(t *testing.T) {
	fact := New("f", Schema{{Name: "k", Kind: String}, {Name: "v", Kind: Float}})
	dim := New("d", Schema{{Name: "k", Kind: String}, {Name: "label", Kind: String}})
	for _, k := range []string{"a", "b", "a"} {
		if err := fact.AppendRow(k, 1.0); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range [][2]string{{"a", "Alpha"}, {"b", "Beta"}} {
		if err := dim.AppendRow(r[0], r[1]); err != nil {
			t.Fatal(err)
		}
	}
	joined, dropped, err := Join(fact, "k", dim, "k", "d_")
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 || joined.NumRows() != 3 {
		t.Fatalf("join shape wrong")
	}
	if joined.Column("d_label").StringAt(1) != "Beta" {
		t.Fatalf("string-key join wrong")
	}
}
