package obs

// Per-request tracing. Every request gets a Trace: an ID (propagated
// via the X-Request-ID header or minted here), the route pattern, and
// a sequence of named phases timed on the hot path (decode → find →
// build/wait → autoscale → draw → exec → encode). A Trace is owned by
// its request goroutine — Phase/End/Snapshot are deliberately
// unsynchronized, matching the serving hot path's sequential shape —
// and only immutable TraceData copies are shared: the per-route rings
// hold finished copies for GET /debug/requests (à la x/net/trace),
// and Snapshot returns a mid-flight copy for debug=true responses.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sort"
	"sync"
	"time"
)

// NewRequestID mints a fresh 16-hex-character request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID is
		// still a valid (if colliding) trace ID, so don't take the
		// request down over telemetry
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Span is one completed phase of a trace: its name, its offset from
// the trace start, and how long it ran.
type Span struct {
	Name     string
	Start    time.Duration
	Duration time.Duration
}

// Trace times the named phases of one request. Create with NewTrace;
// all methods are nil-safe so instrumented code never branches on
// whether tracing is attached. A Trace must only be touched by the
// goroutine driving the request (see the package comment).
type Trace struct {
	id       string
	route    string
	start    time.Time
	status   int
	spans    []Span
	curName  string
	curStart time.Time
	end      time.Time
	done     bool
}

// NewTrace starts a trace for one request: id is the (possibly
// propagated) request ID, route the pattern the request resolved to.
func NewTrace(id, route string) *Trace {
	return &Trace{id: id, route: route, start: time.Now()}
}

// ID returns the trace's request ID ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Phase closes the current phase (if any) and begins the named one.
// The serving pipeline is sequential, so one open phase at a time
// captures it exactly; nested timings belong in their own trace.
func (t *Trace) Phase(name string) {
	if t == nil || t.done {
		return
	}
	now := time.Now()
	t.closeCurrent(now)
	t.curName, t.curStart = name, now
}

// closeCurrent finishes the open phase at now.
func (t *Trace) closeCurrent(now time.Time) {
	if t.curName == "" {
		return
	}
	t.spans = append(t.spans, Span{
		Name:     t.curName,
		Start:    t.curStart.Sub(t.start),
		Duration: now.Sub(t.curStart),
	})
	t.curName = ""
}

// End closes the trace with the response status. Further Phase calls
// are ignored.
func (t *Trace) End(status int) {
	if t == nil || t.done {
		return
	}
	t.end = time.Now()
	t.closeCurrent(t.end)
	t.status, t.done = status, true
}

// TraceData is an immutable copy of a trace — what rings store and
// debug surfaces render.
type TraceData struct {
	ID       string
	Route    string
	Status   int
	Start    time.Time
	Duration time.Duration
	Spans    []Span
}

// Snapshot copies the trace as of now: completed spans plus the open
// phase closed at the current instant. For a finished trace the
// duration is the request's; mid-flight (the debug=true inline view,
// taken just before the response encodes) it is the elapsed time so
// far. The zero TraceData returns on nil.
func (t *Trace) Snapshot() TraceData {
	if t == nil {
		return TraceData{}
	}
	end := t.end
	if !t.done {
		end = time.Now()
	}
	spans := make([]Span, len(t.spans), len(t.spans)+1)
	copy(spans, t.spans)
	if !t.done && t.curName != "" {
		spans = append(spans, Span{
			Name:     t.curName,
			Start:    t.curStart.Sub(t.start),
			Duration: end.Sub(t.curStart),
		})
	}
	return TraceData{
		ID:       t.id,
		Route:    t.route,
		Status:   t.status,
		Start:    t.start,
		Duration: end.Sub(t.start),
		Spans:    spans,
	}
}

// traceCtxKey keys the request's trace in a context.
type traceCtxKey struct{}

// ContextWithTrace attaches a trace to ctx; the registry's hot path
// recovers it with TraceFromContext to time its internal phases.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, t)
}

// TraceFromContext returns the trace attached to ctx, or nil — and nil
// is fine: every Trace method no-ops on a nil receiver.
func TraceFromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return t
}

// DefaultRingSize is how many recent traces each route ring keeps when
// NewTracer is given n <= 0.
const DefaultRingSize = 64

// traceRing is a fixed-capacity ring of recent finished traces for one
// route. Memory is bounded at capacity TraceData values no matter how
// many requests pass through.
type traceRing struct {
	mu   sync.Mutex
	buf  []TraceData
	next int // slot the next record lands in
	n    int // live entries (≤ len(buf))
}

// record inserts one finished trace, overwriting the oldest.
func (r *traceRing) record(td TraceData) {
	r.mu.Lock()
	r.buf[r.next] = td
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// recent returns the ring's traces newest-first.
func (r *traceRing) recent() []TraceData {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceData, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Tracer keeps one bounded ring of recent completed traces per route —
// the store behind GET /debug/requests. Safe for concurrent use.
type Tracer struct {
	mu    sync.RWMutex
	rings map[string]*traceRing
	size  int
}

// NewTracer returns a tracer whose per-route rings hold n traces each
// (DefaultRingSize when n <= 0).
func NewTracer(n int) *Tracer {
	if n <= 0 {
		n = DefaultRingSize
	}
	return &Tracer{rings: make(map[string]*traceRing), size: n}
}

// Record finishes t into its route's ring. Unfinished traces are
// snapshotted as-is (status 0), so a crashed handler still leaves its
// partial trace browsable.
func (tr *Tracer) Record(t *Trace) {
	if tr == nil || t == nil {
		return
	}
	td := t.Snapshot()
	tr.mu.RLock()
	ring, ok := tr.rings[td.Route]
	tr.mu.RUnlock()
	if !ok {
		tr.mu.Lock()
		if ring, ok = tr.rings[td.Route]; !ok {
			ring = &traceRing{buf: make([]TraceData, tr.size)}
			tr.rings[td.Route] = ring
		}
		tr.mu.Unlock()
	}
	ring.record(td)
}

// Routes returns the routes with at least one recorded trace, sorted.
func (tr *Tracer) Routes() []string {
	tr.mu.RLock()
	out := make([]string, 0, len(tr.rings))
	for route := range tr.rings {
		out = append(out, route)
	}
	tr.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Recent returns the route's recent traces, newest first (nil for a
// route never recorded).
func (tr *Tracer) Recent(route string) []TraceData {
	tr.mu.RLock()
	ring, ok := tr.rings[route]
	tr.mu.RUnlock()
	if !ok {
		return nil
	}
	return ring.recent()
}
