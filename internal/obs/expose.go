package obs

// Prometheus text exposition (version 0.0.4): every registered family
// renders as a # HELP line, a # TYPE line and one sample line per
// child, families in name order and children in label order, so
// successive scrapes diff cleanly. Histograms render cumulatively with
// le bounds in seconds plus the _sum and _count series. A Registry is
// itself an http.Handler, mounted at GET /metrics by the server and
// the debug listener.

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/metrics"
)

// labelEscaper escapes label values per the exposition format.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// renderLabels formats {k="v",...}; empty for unlabeled children.
func renderLabels(names, values []string, extra string) string {
	if len(names) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(labelEscaper.Replace(values[i]))
		b.WriteByte('"')
	}
	if extra != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// seconds formats a duration as a float seconds literal.
func seconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// Render writes the whole registry in exposition format.
func (r *Registry) Render(w *strings.Builder) {
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		f.render(w)
	}
}

// render writes one family: metadata, then each child sorted by label
// values.
func (f *family) render(w *strings.Builder) {
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
	f.mu.RLock()
	fn := f.fn
	children := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		children = append(children, c)
	}
	f.mu.RUnlock()
	if fn != nil {
		fmt.Fprintf(w, "%s %d\n", f.name, fn())
		return
	}
	sort.Slice(children, func(i, j int) bool {
		return lessStrings(children[i].labelValues, children[j].labelValues)
	})
	for _, c := range children {
		labels := renderLabels(f.labels, c.labelValues, "")
		switch f.typ {
		case typeCounter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labels, c.counter.Value())
		case typeGauge:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labels, c.gauge.Value())
		case typeHistogram:
			c.renderHistogram(w, f)
		}
	}
}

// renderHistogram writes one histogram child: cumulative _bucket
// series over the geometric bounds (in seconds), then _sum and _count.
// All series come from one frozen copy of the counters, so the
// cumulative counts are monotone within a scrape.
func (c *child) renderHistogram(w *strings.Builder, f *family) {
	counts, total := c.hist.Latency().Buckets()
	cum := int64(0)
	for i := 0; i < metrics.NumBuckets; i++ {
		cum += counts[i]
		// skip interior zero-delta buckets to keep the exposition
		// compact; the first and last bounds always render so parsers
		// see the full range
		if counts[i] == 0 && i != 0 && i != metrics.NumBuckets-1 {
			continue
		}
		le := seconds(metrics.BucketUpper(i))
		labels := renderLabels(f.labels, c.labelValues, `le="`+le+`"`)
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labels, cum)
	}
	inf := renderLabels(f.labels, c.labelValues, `le="+Inf"`)
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, inf, total)
	plain := renderLabels(f.labels, c.labelValues, "")
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, plain, seconds(c.hist.Latency().Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, plain, total)
}

// ServeHTTP renders the registry — the GET /metrics endpoint.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	var b strings.Builder
	r.Render(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
