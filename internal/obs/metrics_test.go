package obs

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-7) // negative adds are clamped: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	h := r.Histogram("h_seconds", "a histogram")
	h.Observe(time.Millisecond)
	h.Observe(2 * time.Millisecond)
	if got := h.Count(); got != 2 {
		t.Fatalf("histogram count = %d, want 2", got)
	}
}

func TestRegisterIdempotentAndConflicts(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "help")
	b := r.Counter("dup_total", "help")
	if a != b {
		t.Fatal("identical re-registration must return the same handle")
	}
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: want panic", name)
			}
		}()
		fn()
	}
	mustPanic("type conflict", func() { r.Gauge("dup_total", "help") })
	mustPanic("label conflict", func() { r.CounterVec("dup_total", "help", "table") })
	mustPanic("empty name", func() { r.Counter("", "help") })
	mustPanic("label arity", func() { r.CounterVec("vec_total", "help", "a", "b").With("only-one") })
}

func TestVecChildrenAreDistinct(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("rows_total", "rows", "table")
	v.With("a").Add(2)
	v.With("b").Inc()
	if v.With("a").Value() != 2 || v.With("b").Value() != 1 {
		t.Fatalf("children mixed up: a=%d b=%d", v.With("a").Value(), v.With("b").Value())
	}
	gv := r.GaugeVec("gen", "generation", "table")
	gv.With("a").Set(3)
	if gv.With("a").Value() != 3 {
		t.Fatal("gauge child lost its value")
	}
	hv := r.HistogramVec("dur_seconds", "durations", "table")
	hv.With("b").Observe(time.Millisecond)
	hv.With("a").Observe(time.Millisecond)
	var visited []string
	hv.Each(func(labels []string, h *Histogram) {
		visited = append(visited, strings.Join(labels, ","))
		if h.Count() != 1 {
			t.Errorf("child %v count = %d, want 1", labels, h.Count())
		}
	})
	if want := []string{"a", "b"}; !equalStrings(visited, want) {
		t.Fatalf("Each visited %v, want sorted %v", visited, want)
	}
}

func TestRenderExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "last by name").Inc()
	v := r.CounterVec("a_total", "first by name", "table")
	v.With(`we"ird\nam` + "\n" + `e`).Add(3)
	r.GaugeFunc("fn_gauge", "computed at render", func() int64 { return 42 })
	h := r.Histogram("lat_seconds", "latencies")
	h.Observe(time.Millisecond)
	h.Observe(time.Second)

	var b strings.Builder
	r.Render(&b)
	out := b.String()

	// families render sorted by name
	if strings.Index(out, "# HELP a_total") > strings.Index(out, "# HELP z_total") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
	for _, want := range []string{
		"# TYPE a_total counter",
		`a_total{table="we\"ird\\nam\ne"} 3`,
		"# TYPE fn_gauge gauge",
		"fn_gauge 42",
		"# TYPE lat_seconds histogram",
		"lat_seconds_count 2\n",
		`lat_seconds_bucket{le="+Inf"} 2`,
		"z_total 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// the histogram sum is in seconds: 1.001s observed
	if !strings.Contains(out, "lat_seconds_sum 1.001") {
		t.Errorf("histogram _sum not in seconds:\n%s", out)
	}
	// cumulative buckets: the +Inf bucket equals _count, and every
	// rendered bucket value is monotone
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lat_seconds_bucket") {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &v); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = v
	}
}

func TestServeHTTPContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x").Inc()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type = %q, want the 0.0.4 exposition type", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_total 1") {
		t.Fatalf("body missing series:\n%s", rec.Body.String())
	}
}

// TestConcurrentObserveAndRender hammers every handle type from many
// goroutines while scrapes run concurrently: run under -race this is
// the registry's data-race proof, and the final render must account
// for every increment.
func TestConcurrentObserveAndRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "hits")
	v := r.CounterVec("rows_total", "rows", "table")
	g := r.Gauge("resident", "resident")
	h := r.Histogram("lat_seconds", "latency")
	r.GaugeFunc("fn", "fn", func() int64 { return c.Value() })

	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			table := fmt.Sprintf("t%d", w%3)
			for i := 0; i < iters; i++ {
				c.Inc()
				v.With(table).Inc()
				g.Set(int64(i))
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}(w)
	}
	// concurrent scrapers
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var b strings.Builder
				r.Render(&b)
				if b.Len() == 0 {
					t.Error("empty render")
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
	total := int64(0)
	for _, tb := range []string{"t0", "t1", "t2"} {
		total += v.With(tb).Value()
	}
	if total != workers*iters {
		t.Fatalf("vec total = %d, want %d", total, workers*iters)
	}
}
