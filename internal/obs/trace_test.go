package obs

import (
	"context"
	"fmt"
	"regexp"
	"sync"
	"testing"
	"time"
)

func TestNewRequestIDShape(t *testing.T) {
	re := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := map[string]bool{}
	for i := 0; i < 32; i++ {
		id := NewRequestID()
		if !re.MatchString(id) {
			t.Fatalf("id %q is not 16 hex chars", id)
		}
		if seen[id] {
			t.Fatalf("id %q repeated", id)
		}
		seen[id] = true
	}
}

func TestTracePhases(t *testing.T) {
	tr := NewTrace("abc", "POST /v1/query")
	tr.Phase("decode")
	time.Sleep(time.Millisecond)
	tr.Phase("exec")
	time.Sleep(time.Millisecond)
	tr.End(200)
	tr.Phase("late") // ignored after End

	td := tr.Snapshot()
	if td.ID != "abc" || td.Route != "POST /v1/query" || td.Status != 200 {
		t.Fatalf("snapshot header = %+v", td)
	}
	if len(td.Spans) != 2 || td.Spans[0].Name != "decode" || td.Spans[1].Name != "exec" {
		t.Fatalf("spans = %+v", td.Spans)
	}
	// spans partition the trace: contiguous offsets, durations summing
	// to ≈ the total
	if td.Spans[1].Start != td.Spans[0].Start+td.Spans[0].Duration {
		t.Fatalf("spans not contiguous: %+v", td.Spans)
	}
	sum := td.Spans[0].Duration + td.Spans[1].Duration
	if diff := td.Duration - (td.Spans[0].Start + sum); diff < 0 || diff > td.Duration {
		t.Fatalf("span sum %v does not fit duration %v", sum, td.Duration)
	}
	if td.Duration < 2*time.Millisecond {
		t.Fatalf("duration %v shorter than the slept phases", td.Duration)
	}
}

func TestTraceMidFlightSnapshot(t *testing.T) {
	tr := NewTrace("id", "r")
	tr.Phase("open")
	time.Sleep(time.Millisecond)
	td := tr.Snapshot() // not ended: the open phase closes at "now"
	if td.Status != 0 {
		t.Fatalf("mid-flight status = %d, want 0", td.Status)
	}
	if len(td.Spans) != 1 || td.Spans[0].Name != "open" || td.Spans[0].Duration <= 0 {
		t.Fatalf("mid-flight spans = %+v", td.Spans)
	}
	// the snapshot must not have closed the live phase
	tr.End(204)
	if got := tr.Snapshot(); len(got.Spans) != 1 || got.Status != 204 {
		t.Fatalf("post-End snapshot = %+v", got)
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	tr.Phase("x")
	tr.End(500)
	if tr.ID() != "" {
		t.Fatal("nil trace ID should be empty")
	}
	if td := tr.Snapshot(); td.ID != "" || len(td.Spans) != 0 {
		t.Fatalf("nil snapshot = %+v", td)
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := NewTrace("id", "r")
	ctx := ContextWithTrace(context.Background(), tr)
	if got := TraceFromContext(ctx); got != tr {
		t.Fatal("trace lost in context")
	}
	if got := TraceFromContext(context.Background()); got != nil {
		t.Fatal("empty context must yield nil trace")
	}
}

// TestTracerRingBoundedNewestFirst proves the two ring invariants the
// debug surface depends on: memory stays bounded at the configured
// capacity no matter how many requests pass, and listing order is
// newest-first.
func TestTracerRingBoundedNewestFirst(t *testing.T) {
	const cap = 4
	tr := NewTracer(cap)
	for i := 0; i < 3*cap; i++ {
		tc := NewTrace(fmt.Sprintf("id%02d", i), "GET /x")
		tc.End(200)
		tr.Record(tc)
	}
	got := tr.Recent("GET /x")
	if len(got) != cap {
		t.Fatalf("ring holds %d traces, want bounded at %d", len(got), cap)
	}
	for i, td := range got {
		want := fmt.Sprintf("id%02d", 3*cap-1-i)
		if td.ID != want {
			t.Fatalf("position %d = %s, want %s (newest first)", i, td.ID, want)
		}
	}
	if rs := tr.Routes(); len(rs) != 1 || rs[0] != "GET /x" {
		t.Fatalf("routes = %v", rs)
	}
	if tr.Recent("GET /other") != nil {
		t.Fatal("unknown route must return nil")
	}
}

func TestTracerDefaultSizeAndNil(t *testing.T) {
	tr := NewTracer(0)
	if tr.size != DefaultRingSize {
		t.Fatalf("size = %d, want %d", tr.size, DefaultRingSize)
	}
	tr.Record(nil) // nil trace is a no-op
	var nilT *Tracer
	nilT.Record(NewTrace("x", "r")) // nil tracer too
}

func TestTracerConcurrentRecord(t *testing.T) {
	tr := NewTracer(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			route := fmt.Sprintf("GET /r%d", w%2)
			for i := 0; i < 200; i++ {
				tc := NewTrace("id", route)
				tc.Phase("p")
				tc.End(200)
				tr.Record(tc)
				_ = tr.Recent(route)
				_ = tr.Routes()
			}
		}(w)
	}
	wg.Wait()
	for _, route := range tr.Routes() {
		if n := len(tr.Recent(route)); n != 8 {
			t.Fatalf("%s ring holds %d, want full at 8", route, n)
		}
	}
}
