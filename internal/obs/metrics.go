// Package obs is the observability substrate of the serving stack: a
// stdlib-only metrics registry with Prometheus text exposition
// (metrics.go, expose.go) and lightweight per-request tracing with
// bounded per-route rings of recent traces (trace.go). The serve layer
// instruments its hot paths through typed Counter/Gauge/Histogram
// handles registered here; GET /metrics renders the whole registry and
// GET /debug/requests browses recent traces. Everything is safe for
// concurrent use and the hot-path operations (Counter.Inc,
// Histogram.Observe) are single atomic adds — no locks, no allocation.
//
// The package deliberately has no repro-specific imports beyond
// internal/metrics (whose lock-free geometric histogram backs
// Histogram): wire shapes for the JSON debug surfaces live in
// internal/api/v1, converted by the serve layer, so obs itself never
// defines a wire contract.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Metric type strings, as emitted in the # TYPE exposition line.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// Counter is a monotonically increasing integer metric handle. The
// zero value is unusable; obtain one from Registry.Counter or
// CounterVec.With. Inc/Add are one atomic add.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative n is a programming error (counters are
// monotone); it is clamped to zero so a bug shows as a flat series
// rather than a sawtooth that breaks rate().
func (c *Counter) Add(n int64) {
	if n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable integer metric handle (resident bytes, current
// generation, ...). Obtain one from Registry.Gauge or GaugeVec.With.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a duration histogram handle over the serving layer's
// lock-free geometric buckets (internal/metrics): Observe is one
// atomic add per bucket and never blocks. Exposition renders the
// buckets cumulatively with le bounds in seconds.
type Histogram struct {
	h metrics.Histogram
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.h.Observe(d) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.h.Count() }

// Latency exposes the underlying quantile-capable histogram, so ops
// surfaces that report digests (/healthz p50/p95/p99) and the
// Prometheus exposition share one set of counters.
func (h *Histogram) Latency() *metrics.Histogram { return &h.h }

// family is one registered metric name: its metadata plus the children
// keyed by label values. Unlabeled metrics are a family with a single
// child under the empty key.
type family struct {
	name   string
	help   string
	typ    string
	labels []string

	mu       sync.RWMutex
	children map[string]*child

	// fn, when non-nil, makes this family a gauge evaluated at render
	// time (GaugeFunc); it has no children.
	fn func() int64
}

// child is one label combination of a family.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// Registry holds the registered metric families and renders them in
// Prometheus text exposition format (expose.go). All methods are safe
// for concurrent use; registration is rare (startup), lookups on the
// Observe path are one RLock over a small map.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string // registration order; render sorts per family anyway
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register installs a family, panicking on a duplicate name with a
// different shape — metric names are a global contract (docs, dashboards,
// scrape configs), so colliding registrations are a programming error
// caught at startup, not a runtime condition to soldier through.
func (r *Registry) register(name, help, typ string, labels []string) *family {
	if name == "" {
		panic("obs: metric name must be non-empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
				name, typ, labels, f.typ, f.labels))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels,
		children: make(map[string]*child)}
	r.families[name] = f
	r.order = append(r.order, name)
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// childFor returns (creating if needed) the family's child for the
// given label values.
func (f *family) childFor(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok = f.children[key]; ok {
		return c
	}
	c = &child{labelValues: append([]string(nil), values...)}
	switch f.typ {
	case typeCounter:
		c.counter = &Counter{}
	case typeGauge:
		c.gauge = &Gauge{}
	case typeHistogram:
		c.hist = &Histogram{}
	}
	f.children[key] = c
	return c
}

// Counter registers (or returns the existing) unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, typeCounter, nil).childFor(nil).counter
}

// Gauge registers (or returns the existing) unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, typeGauge, nil).childFor(nil).gauge
}

// GaugeFunc registers a gauge whose value is computed at render time —
// for quantities another subsystem already tracks (resident bytes,
// table counts), so exposition cannot drift from the source of truth.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	f := r.register(name, help, typeGauge, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// CounterFunc registers a counter whose value is read at render time —
// for monotone counts another subsystem already tracks (the QoS front
// end's admission tallies), so exposition cannot drift from the source
// of truth. fn must be monotone non-decreasing; the registry does not
// re-check.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	f := r.register(name, help, typeCounter, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// Histogram registers (or returns the existing) unlabeled duration
// histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.register(name, help, typeHistogram, nil).childFor(nil).hist
}

// CounterVec is a counter family with labels; With resolves one child.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, typeCounter, labels)}
}

// With returns the counter for the given label values (created on
// first use). Hot paths should resolve once and keep the handle.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.childFor(values).counter
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, typeGauge, labels)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.childFor(values).gauge
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, typeHistogram, labels)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.childFor(values).hist
}

// Each visits every child of the family in sorted label order, for ops
// surfaces that digest labeled histograms (e.g. /healthz per-route
// latency) without re-tracking them elsewhere.
func (v *HistogramVec) Each(fn func(labelValues []string, h *Histogram)) {
	v.f.mu.RLock()
	children := make([]*child, 0, len(v.f.children))
	for _, c := range v.f.children {
		children = append(children, c)
	}
	v.f.mu.RUnlock()
	sort.Slice(children, func(i, j int) bool {
		return lessStrings(children[i].labelValues, children[j].labelValues)
	})
	for _, c := range children {
		fn(c.labelValues, c.hist)
	}
}

func lessStrings(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
