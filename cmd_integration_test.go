package repro

// End-to-end tests of the command-line tools: build each binary with the
// host toolchain, run it against a generated CSV, and check the outputs.

import (
	"bufio"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/table"
)

// buildTool compiles a cmd/<name> binary into a shared temp dir once per
// test run.
func buildTool(t *testing.T, name string) string {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

// writeSalesCSV generates a small skewed CSV dataset.
func writeSalesCSV(t *testing.T, path string) {
	t.Helper()
	tbl := table.New("sales", table.Schema{
		{Name: "region", Kind: table.String},
		{Name: "amount", Kind: table.Float},
		{Name: "qty", Kind: table.Int},
	})
	rng := rand.New(rand.NewSource(11))
	add := func(region string, n int, mean, sd float64) {
		for i := 0; i < n; i++ {
			if err := tbl.AppendRow(region, mean+sd*rng.NormFloat64(), int64(1+rng.Intn(5))); err != nil {
				t.Fatal(err)
			}
		}
	}
	add("NA", 3000, 100, 10)
	add("EU", 800, 80, 40)
	add("APAC", 60, 300, 150)
	if err := tbl.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
}

func TestCmdCvsampleEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildTool(t, "cvsample")
	dir := t.TempDir()
	in := filepath.Join(dir, "sales.csv")
	out := filepath.Join(dir, "sample.csv")
	writeSalesCSV(t, in)

	cmd := exec.Command(bin, "-in", in, "-out", out, "-groupby", "region", "-agg", "amount", "-rate", "0.05")
	stdout, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("cvsample: %v\n%s", err, stdout)
	}
	if !strings.Contains(string(stdout), "CVOPT") {
		t.Fatalf("missing method in output: %s", stdout)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if !strings.Contains(lines[0], "_weight") {
		t.Fatalf("sample CSV missing _weight column: %s", lines[0])
	}
	// 5% of 3860 = 193 rows (+header)
	if len(lines) < 150 || len(lines) > 250 {
		t.Fatalf("sample row count %d implausible for 5%% of 3860", len(lines)-1)
	}
}

func TestCmdCvsampleMethodsAndErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildTool(t, "cvsample")
	dir := t.TempDir()
	in := filepath.Join(dir, "sales.csv")
	writeSalesCSV(t, in)

	for _, method := range []string{"uniform", "senate", "cs", "rl", "sampleseek"} {
		out := filepath.Join(dir, method+".csv")
		cmd := exec.Command(bin, "-in", in, "-out", out, "-groupby", "region", "-agg", "amount", "-m", "100", "-method", method)
		if o, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("method %s: %v\n%s", method, err, o)
		}
		if _, err := os.Stat(out); err != nil {
			t.Fatalf("method %s wrote nothing", method)
		}
	}
	// linf and lp norms
	for _, norm := range []string{"linf", "lp:4"} {
		out := filepath.Join(dir, "norm.csv")
		cmd := exec.Command(bin, "-in", in, "-out", out, "-groupby", "region", "-agg", "amount", "-m", "100", "-norm", norm)
		if o, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("norm %s: %v\n%s", norm, err, o)
		}
	}
	// budget autoscaling: -target-cv picks the budget and reports the
	// achieved CV
	autoOut := filepath.Join(dir, "auto.csv")
	cmd := exec.Command(bin, "-in", in, "-out", autoOut, "-groupby", "region", "-agg", "amount", "-target-cv", "0.05")
	o, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("-target-cv: %v\n%s", err, o)
	}
	if !strings.Contains(string(o), "autoscaled to budget") || !strings.Contains(string(o), "achieved") {
		t.Fatalf("-target-cv output should report the chosen budget and achieved CV:\n%s", o)
	}
	if _, err := os.Stat(autoOut); err != nil {
		t.Fatalf("-target-cv wrote nothing")
	}

	// error cases: missing flags, bad method, bad norm, bad rate, and
	// -target-cv misuse (with -m; with a non-CVOPT method)
	bad := [][]string{
		{},
		{"-in", in, "-out", filepath.Join(dir, "x.csv"), "-groupby", "region", "-agg", "amount", "-method", "nope", "-m", "10"},
		{"-in", in, "-out", filepath.Join(dir, "x.csv"), "-groupby", "region", "-agg", "amount", "-norm", "l7", "-m", "10"},
		{"-in", in, "-out", filepath.Join(dir, "x.csv"), "-groupby", "region", "-agg", "amount", "-rate", "7"},
		{"-in", filepath.Join(dir, "missing.csv"), "-out", filepath.Join(dir, "x.csv"), "-groupby", "region", "-agg", "amount", "-m", "10"},
		{"-in", in, "-out", filepath.Join(dir, "x.csv"), "-groupby", "region", "-agg", "amount", "-target-cv", "0.05", "-m", "10"},
		{"-in", in, "-out", filepath.Join(dir, "x.csv"), "-groupby", "region", "-agg", "amount", "-target-cv", "0.05", "-method", "uniform"},
		{"-in", in, "-out", filepath.Join(dir, "x.csv"), "-groupby", "region", "-agg", "amount", "-max-budget", "100", "-m", "10"},
	}
	for i, args := range bad {
		cmd := exec.Command(bin, args...)
		if err := cmd.Run(); err == nil {
			t.Fatalf("bad invocation %d should fail", i)
		}
	}
}

func TestCmdCvqueryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildTool(t, "cvquery")
	dir := t.TempDir()
	in := filepath.Join(dir, "sales.csv")
	writeSalesCSV(t, in)

	// exact only
	cmd := exec.Command(bin, "-in", in, "-sql", "SELECT region, AVG(amount) FROM input GROUP BY region")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("cvquery: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"exact", "NA", "EU", "APAC"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}

	// with approximation
	cmd = exec.Command(bin, "-in", in, "-rate", "0.1", "-sql", "SELECT region, AVG(amount), COUNT(*) FROM input GROUP BY region")
	out, err = cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("cvquery approx: %v\n%s", err, out)
	}
	text = string(out)
	if !strings.Contains(text, "approximate (CVOPT") || !strings.Contains(text, "error:") {
		t.Fatalf("approx output incomplete:\n%s", text)
	}

	// parse failure propagates
	cmd = exec.Command(bin, "-in", in, "-sql", "not sql")
	if err := cmd.Run(); err == nil {
		t.Fatalf("bad SQL should fail")
	}
}

// cvsample output feeds cvquery's -sample mode: the materialized
// weighted sample answers queries directly, with ± error bars.
func TestCmdSampleThenQueryPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	sampleBin := buildTool(t, "cvsample")
	queryBin := buildTool(t, "cvquery")
	dir := t.TempDir()
	in := filepath.Join(dir, "sales.csv")
	sampleCSV := filepath.Join(dir, "sample.csv")
	writeSalesCSV(t, in)

	cmd := exec.Command(sampleBin, "-in", in, "-out", sampleCSV, "-groupby", "region", "-agg", "amount", "-rate", "0.1")
	if o, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("cvsample: %v\n%s", err, o)
	}
	cmd = exec.Command(queryBin, "-in", sampleCSV, "-sample", "-sql",
		"SELECT region, AVG(amount), COUNT(*) FROM input GROUP BY region ORDER BY region")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("cvquery -sample: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "materialized sample") {
		t.Fatalf("missing title:\n%s", text)
	}
	for _, region := range []string{"NA", "EU", "APAC"} {
		if !strings.Contains(text, region) {
			t.Fatalf("region %s missing:\n%s", region, text)
		}
	}
	if !strings.Contains(text, "±") {
		t.Fatalf("error bars missing:\n%s", text)
	}
	// -sample on a CSV without _weight fails
	cmd = exec.Command(queryBin, "-in", in, "-sample", "-sql", "SELECT region, AVG(amount) FROM input GROUP BY region")
	if err := cmd.Run(); err == nil {
		t.Fatalf("-sample without _weight should fail")
	}
}

// cvserve end-to-end over a real socket: start the daemon on a free
// port, register a sample for a workload over HTTP, answer a GROUP BY
// query off it (estimates + standard errors), then shut down gracefully
// with SIGTERM.
func TestCmdCvserveEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildTool(t, "cvserve")
	dir := t.TempDir()
	in := filepath.Join(dir, "sales.csv")
	writeSalesCSV(t, in)

	// -load is the preload alias of -table; the refresh flags set the
	// daemon-wide streaming defaults
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-load", "sales="+in, "-refresh-rows", "100000")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// the daemon prints its bound address once the listener is up;
	// bound by a deadline so a silently-hung daemon fails fast
	addrCh := make(chan string, 1)
	go func() {
		scanner := bufio.NewScanner(stdout)
		for scanner.Scan() {
			if _, addr, ok := strings.Cut(scanner.Text(), "listening on "); ok {
				addrCh <- strings.TrimSpace(addr)
				return
			}
		}
		close(addrCh)
	}()
	var base string
	select {
	case base = <-addrCh:
	case <-time.After(10 * time.Second):
	}
	if base == "" {
		t.Fatal("cvserve never reported its address")
	}

	post := func(path, body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("POST %s: reading body: %v", path, err)
		}
		return resp.StatusCode, data
	}

	code, body := post("/v1/samples", `{
		"table": "sales",
		"queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}],
		"rate": 0.05
	}`)
	if code != http.StatusCreated {
		t.Fatalf("register sample: %d %s", code, body)
	}

	code, body = post("/v1/query", `{"sql": "SELECT region, AVG(amount) FROM sales GROUP BY region"}`)
	if code != http.StatusOK {
		t.Fatalf("query: %d %s", code, body)
	}
	var qr struct {
		Exact  bool `json:"exact"`
		Groups []struct {
			Key  []string   `json:"key"`
			Aggs []*float64 `json:"aggs"`
			SE   []*float64 `json:"se"`
		} `json:"groups"`
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	if qr.Exact || len(qr.Groups) != 3 {
		t.Fatalf("want 3 sampled groups, got %s", body)
	}
	regions := map[string]bool{}
	for _, g := range qr.Groups {
		regions[g.Key[0]] = true
		// SE may legitimately be 0 for a stratum sampled in full (the
		// finite-population correction), but must always be reported
		if g.Aggs[0] == nil || g.SE[0] == nil || *g.SE[0] < 0 {
			t.Fatalf("group %v missing estimate or standard error: %s", g.Key, body)
		}
	}
	for _, want := range []string{"NA", "EU", "APAC"} {
		if !regions[want] {
			t.Fatalf("region %s missing: %s", want, body)
		}
	}

	// autoscaled round trip: ask for an accuracy instead of a budget and
	// check the daemon picked the budget and met the goal, then answer a
	// query off the autoscaled sample
	code, body = post("/v1/samples", `{
		"table": "sales",
		"queries": [{"group_by": ["region"], "aggs": [{"column": "qty"}]}],
		"target_cv": 0.05
	}`)
	if code != http.StatusCreated {
		t.Fatalf("autoscaled sample: %d %s", code, body)
	}
	var auto struct {
		Budget       int      `json:"budget"`
		ChosenBudget int      `json:"chosen_budget"`
		TargetCV     float64  `json:"target_cv"`
		AchievedCV   *float64 `json:"achieved_cv"`
		TargetMet    *bool    `json:"target_met"`
	}
	if err := json.Unmarshal(body, &auto); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	if auto.TargetCV != 0.05 || auto.ChosenBudget <= 0 || auto.ChosenBudget != auto.Budget {
		t.Fatalf("autoscale fields wrong: %s", body)
	}
	if auto.AchievedCV == nil || *auto.AchievedCV > 0.05 || auto.TargetMet == nil || !*auto.TargetMet {
		t.Fatalf("autoscaled sample must meet its target: %s", body)
	}
	code, body = post("/v1/query", `{
		"sql": "SELECT region, SUM(qty) FROM sales GROUP BY region",
		"target_cv": 0.05
	}`)
	if code != http.StatusOK {
		t.Fatalf("autoscaled query: %d %s", code, body)
	}
	var aq struct {
		Exact        bool     `json:"exact"`
		ChosenBudget int      `json:"chosen_budget"`
		AchievedCV   *float64 `json:"achieved_cv"`
	}
	if err := json.Unmarshal(body, &aq); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	if aq.Exact || aq.ChosenBudget != auto.ChosenBudget || aq.AchievedCV == nil {
		t.Fatalf("autoscaled query should reuse the autoscaled sample: %s", body)
	}

	// streaming ingest over the socket: make the table live, append a
	// batch, refresh, and check the generation advances end to end
	code, body = post("/v1/tables/sales/stream", `{
		"queries": [{"group_by": ["region"], "aggs": [{"column": "amount"}]}],
		"rate": 0.05
	}`)
	if code != http.StatusCreated {
		t.Fatalf("stream: %d %s", code, body)
	}
	code, body = post("/v1/tables/sales/rows", `{
		"rows": [["NA", 105.5, 2], ["EU", 82.0, 1], ["APAC", 290.0, 3]]
	}`)
	if code != http.StatusOK {
		t.Fatalf("append: %d %s", code, body)
	}
	var ap struct {
		Appended int `json:"appended"`
		Pending  int `json:"pending"`
	}
	if err := json.Unmarshal(body, &ap); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	if ap.Appended != 3 || ap.Pending != 3 {
		t.Fatalf("append response: %s", body)
	}
	code, body = post("/v1/tables/sales/refresh", "")
	if code != http.StatusOK {
		t.Fatalf("refresh: %d %s", code, body)
	}
	var ref struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(body, &ref); err != nil {
		t.Fatalf("decoding %s: %v", body, err)
	}
	if ref.Generation != 2 {
		t.Fatalf("refresh generation = %d, want 2: %s", ref.Generation, body)
	}

	// graceful shutdown: SIGTERM (what container runtimes send), clean
	// exit
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("cvserve exited uncleanly: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cvserve did not shut down within 10s")
	}
}

// startCvserve launches the daemon on a free port and returns its base
// URL; the process is killed at test cleanup.
func startCvserve(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cmd.Process.Kill(); _ = cmd.Wait() })
	addrCh := make(chan string, 1)
	go func() {
		scanner := bufio.NewScanner(stdout)
		for scanner.Scan() {
			if _, addr, ok := strings.Cut(scanner.Text(), "listening on "); ok {
				addrCh <- strings.TrimSpace(addr)
				return
			}
		}
		close(addrCh)
	}()
	select {
	case base := <-addrCh:
		if base == "" {
			t.Fatal("cvserve never reported its address")
		}
		return base
	case <-time.After(10 * time.Second):
		t.Fatal("cvserve never reported its address")
	}
	return ""
}

// The remote scenario end to end: cvsample -server registers a sample
// on a live cvserve through the typed client, cvquery -server answers
// off it, autoscale flags forward as target_cv/max_budget, and typed
// error codes reach the user on failure.
func TestCmdRemoteCLIsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	serveBin := buildTool(t, "cvserve")
	sampleBin := buildTool(t, "cvsample")
	queryBin := buildTool(t, "cvquery")
	dir := t.TempDir()
	in := filepath.Join(dir, "sales.csv")
	writeSalesCSV(t, in)
	base := startCvserve(t, serveBin, "-load", "sales="+in)

	// cvsample -server: build-or-fetch on the daemon; the second run
	// must hit the daemon's cache (idempotent registration)
	args := []string{"-server", base, "-table", "sales", "-groupby", "region", "-agg", "amount", "-rate", "0.05"}
	out, err := exec.Command(sampleBin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("cvsample -server: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "registered sample") || !strings.Contains(string(out), "key ") {
		t.Fatalf("cvsample -server output incomplete:\n%s", out)
	}
	out, err = exec.Command(sampleBin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("cvsample -server rerun: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "reusing cached") {
		t.Fatalf("rerun should fetch the cached sample:\n%s", out)
	}

	// cvquery -server answers off the registered sample: approximate,
	// all regions, ± standard errors
	out, err = exec.Command(queryBin, "-server", base,
		"-sql", "SELECT region, AVG(amount) FROM sales GROUP BY region").CombinedOutput()
	if err != nil {
		t.Fatalf("cvquery -server: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "remote approximate") || !strings.Contains(text, "±") {
		t.Fatalf("cvquery -server should answer from the sample:\n%s", text)
	}
	for _, region := range []string{"NA", "EU", "APAC"} {
		if !strings.Contains(text, region) {
			t.Fatalf("region %s missing:\n%s", region, text)
		}
	}

	// build-if-missing: a workload no sample covers yet (qty), built on
	// the daemon at -rate, then answered approximately
	out, err = exec.Command(queryBin, "-server", base, "-rate", "0.1",
		"-sql", "SELECT region, SUM(qty) FROM sales GROUP BY region").CombinedOutput()
	if err != nil {
		t.Fatalf("cvquery -server -rate: %v\n%s", err, out)
	}
	text = string(out)
	if !strings.Contains(text, "built sample") || !strings.Contains(text, "remote approximate") {
		t.Fatalf("build-if-missing flow incomplete:\n%s", text)
	}

	// autoscale flags forward as target_cv/max_budget: the daemon picks
	// the budget and the CLI reports the a-priori guarantee
	out, err = exec.Command(queryBin, "-server", base, "-target-cv", "0.05",
		"-sql", "SELECT region, AVG(amount) FROM sales GROUP BY region").CombinedOutput()
	if err != nil {
		t.Fatalf("cvquery -server -target-cv: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "autoscaled to budget") {
		t.Fatalf("autoscale report missing:\n%s", out)
	}
	out, err = exec.Command(sampleBin, "-server", base, "-table", "sales",
		"-groupby", "region", "-agg", "qty", "-target-cv", "0.05").CombinedOutput()
	if err != nil {
		t.Fatalf("cvsample -server -target-cv: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "autoscaled to budget") {
		t.Fatalf("cvsample autoscale report missing:\n%s", out)
	}

	// typed error codes reach the user: unknown FROM table → the
	// contract code, not just prose
	cmd := exec.Command(queryBin, "-server", base,
		"-sql", "SELECT region, AVG(amount) FROM nope GROUP BY region")
	out, err = cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("unknown remote table should fail:\n%s", out)
	}
	if !strings.Contains(string(out), "table_not_found") {
		t.Fatalf("error should surface the contract code:\n%s", out)
	}
	cmd = exec.Command(sampleBin, "-server", base, "-table", "nope",
		"-groupby", "region", "-agg", "amount", "-rate", "0.05")
	out, err = cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("unknown remote table should fail:\n%s", out)
	}
	if !strings.Contains(string(out), "table_not_found") {
		t.Fatalf("error should surface the contract code:\n%s", out)
	}

	// remote-flag misuse fails fast, locally
	bad := [][]string{
		{"-target-cv", "0.05", "-sql", "SELECT COUNT(*) FROM x", "-in", in},                           // remote flag without -server
		{"-server", base, "-sql", "SELECT region, AVG(amount) FROM sales GROUP BY region", "-in", in}, // -in with -server
		{"-server", base, "-rate", "0.1", "-target-cv", "0.05", "-sql", "SELECT COUNT(*) FROM sales"}, // both sizings
		{"-server", base, "-rate", "0.1", "-max-budget", "500", "-sql", "SELECT COUNT(*) FROM sales"}, // cap without -target-cv
		{"-server", base}, // no -sql
	}
	for i, args := range bad {
		if err := exec.Command(queryBin, args...).Run(); err == nil {
			t.Fatalf("bad remote invocation %d should fail", i)
		}
	}
	if err := exec.Command(sampleBin, "-server", base, "-table", "sales",
		"-groupby", "region", "-agg", "amount", "-m", "100", "-method", "uniform").Run(); err == nil {
		t.Fatal("remote -method uniform should fail (daemon builds CVOPT only)")
	}
}

func TestCmdCvbenchListAndSingle(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildTool(t, "cvbench")
	out, err := exec.Command(bin, "-exp", "list").CombinedOutput()
	if err != nil {
		t.Fatalf("cvbench list: %v\n%s", err, out)
	}
	for _, id := range []string{"fig1", "table4", "table6", "ablcap"} {
		if !strings.Contains(string(out), id) {
			t.Fatalf("list missing %s:\n%s", id, out)
		}
	}
	// tiny single run
	out, err = exec.Command(bin, "-exp", "ablcap", "-openaq-rows", "20000", "-bikes-rows", "15000", "-reps", "1").CombinedOutput()
	if err != nil {
		t.Fatalf("cvbench ablcap: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Ablation") {
		t.Fatalf("experiment output missing:\n%s", out)
	}
	// unknown experiment
	if err := exec.Command(bin, "-exp", "nope").Run(); err == nil {
		t.Fatalf("unknown experiment should fail")
	}
}

// The daemon's observability surface end-to-end: JSON structured logs
// on stderr, the Prometheus exposition on the query port, and the
// -debug-addr listener carrying pprof + /metrics + /debug/requests.
func TestCmdCvserveObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildTool(t, "cvserve")
	dir := t.TempDir()
	in := filepath.Join(dir, "sales.csv")
	writeSalesCSV(t, in)

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-table", "sales="+in,
		"-log-format", "json", "-debug-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = cmd.Process.Kill(); _ = cmd.Wait() })

	// the API address arrives on stdout; the debug listener announces
	// itself as a JSON log line on stderr — reading it also proves
	// -log-format json produces parseable records
	addrCh := make(chan string, 1)
	go func() {
		scanner := bufio.NewScanner(stdout)
		for scanner.Scan() {
			if _, addr, ok := strings.Cut(scanner.Text(), "listening on "); ok {
				addrCh <- strings.TrimSpace(addr)
				return
			}
		}
		close(addrCh)
	}()
	debugCh := make(chan string, 1)
	logCh := make(chan string, 4)
	go func() {
		scanner := bufio.NewScanner(stderr)
		for scanner.Scan() {
			var rec struct {
				Msg       string `json:"msg"`
				Addr      string `json:"addr"`
				Route     string `json:"route"`
				RequestID string `json:"request_id"`
				Code      int    `json:"code"`
			}
			if err := json.Unmarshal(scanner.Bytes(), &rec); err != nil {
				t.Errorf("non-JSON stderr line: %s", scanner.Text())
				continue
			}
			switch rec.Msg {
			case "debug listener":
				debugCh <- rec.Addr
			case "request":
				if rec.Route != "" && rec.RequestID != "" && rec.Code != 0 {
					select {
					case logCh <- rec.Route:
					default:
					}
				}
			}
		}
	}()
	var base, debugBase string
	deadline := time.After(10 * time.Second)
	for base == "" || debugBase == "" {
		select {
		case base = <-addrCh:
		case debugBase = <-debugCh:
		case <-deadline:
			t.Fatalf("daemon never announced listeners: api=%q debug=%q", base, debugBase)
		}
	}

	// traffic on the API port, then scrape its own /metrics
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Header.Get("Content-Type"), "version=0.0.4") {
		t.Fatalf("Content-Type = %q", resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(string(body), `repro_http_requests_total{route="GET /healthz",code="200"} 1`) {
		t.Fatalf("exposition missing the healthz hit:\n%s", body)
	}

	// the request produced a structured log line with route + id
	select {
	case route := <-logCh:
		if route != "GET /healthz" {
			t.Fatalf("first request log route = %q", route)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no structured request log line arrived")
	}

	// the debug listener serves pprof, metrics and the trace rings
	for _, path := range []string{"/debug/pprof/", "/metrics", "/debug/requests"} {
		resp, err := http.Get(debugBase + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
	}
	// and it does NOT serve the query API
	resp, err = http.Get(debugBase + "/v1/tables")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("debug listener answered /v1/tables with %d", resp.StatusCode)
	}
}
